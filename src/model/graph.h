#pragma once
// High-level graph IR — the top layer of the multi-level programming stack
// (paper §III-B). Models are linear layer lists with explicit producer
// references (which is enough to express the residual topologies of the
// paper's five benchmark DNNs). The push-button flow builds these from
// ONNX-lite text files (model/onnx_lite.h); the C++ builder API constructs
// them programmatically (src/dnn zoo).

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/types.h"

namespace gemmini {

enum class LayerKind : std::uint8_t {
  kInput,
  kConv,           ///< standard convolution (maps to the spatial array)
  kDepthwiseConv,  ///< per-channel convolution (maps poorly — MobileNet)
  kDense,          ///< fully connected / matmul
  kMaxPool,
  kGlobalAvgPool,
  kResAdd,         ///< elementwise residual addition of two producers
  kSoftmax,        ///< CPU-resident (BERT)
  kLayerNorm,      ///< CPU-resident (BERT)
  kGelu,           ///< CPU-resident (BERT)
};

const char* layer_kind_name(LayerKind k);

/// Shape of a layer's output: either a spatial NHWC tensor (batch folded
/// out; `h x w x c`) or a 2-D matrix (`rows x cols`).
struct TensorShape {
  bool is_matrix = false;
  unsigned h = 0, w = 0, c = 0;   // spatial form
  std::uint64_t rows = 0, cols = 0;  // matrix form

  std::uint64_t elems() const {
    return is_matrix ? rows * cols
                     : static_cast<std::uint64_t>(h) * w * c;
  }
  static TensorShape spatial(unsigned h, unsigned w, unsigned c) {
    TensorShape s;
    s.h = h; s.w = w; s.c = c;
    return s;
  }
  static TensorShape matrix(std::uint64_t rows, std::uint64_t cols) {
    TensorShape s;
    s.is_matrix = true;
    s.rows = rows; s.cols = cols;
    return s;
  }
  friend bool operator==(const TensorShape&, const TensorShape&) = default;
};

struct LayerSpec {
  LayerKind kind = LayerKind::kInput;
  std::string name;

  int input = -1;   ///< producer layer index; -1 = previous layer
  int input2 = -1;  ///< second producer (kResAdd only)

  // Conv / DepthwiseConv.
  unsigned kh = 1, kw = 1, oc = 0, stride = 1, padding = 0;
  // Dense: output features (input features inferred).
  std::uint64_t out_features = 0;
  /// Dense only: weights stored as packed int4 nibbles in DRAM,
  /// sign-extended to int8 on MVIN (halves weight footprint and traffic).
  bool int4_weights = false;
  // Pool.
  unsigned window = 2, pool_stride = 2, pool_padding = 0;

  Activation act = Activation::kNone;
  bool has_bias = true;

  // kInput only: the model's input shape.
  TensorShape input_shape;
};

/// A validated model: layers plus inferred output shapes and per-layer
/// operation counts.
class Model {
 public:
  Model(std::string name, std::vector<LayerSpec> layers);

  const std::string& name() const { return name_; }
  const std::vector<LayerSpec>& layers() const { return layers_; }
  const TensorShape& shape(std::size_t layer) const {
    return shapes_.at(layer);
  }
  /// Resolved producer index for layer i's primary input.
  std::size_t producer(std::size_t layer) const;
  std::size_t producer2(std::size_t layer) const;

  /// Useful multiply-accumulates in the whole model (conv+dense+dwconv).
  std::uint64_t total_macs() const;
  std::uint64_t layer_macs(std::size_t layer) const;
  /// Elements processed by CPU-resident special layers.
  std::uint64_t total_special_elems() const;

  std::string summary() const;

 private:
  void infer_shapes();

  std::string name_;
  std::vector<LayerSpec> layers_;
  std::vector<TensorShape> shapes_;
};

/// Fluent builder used by the zoo and the examples.
class ModelBuilder {
 public:
  explicit ModelBuilder(std::string name) : name_(std::move(name)) {}

  ModelBuilder& input(unsigned h, unsigned w, unsigned c);
  ModelBuilder& input_matrix(std::uint64_t rows, std::uint64_t cols);
  /// Returns the index of the added layer so residual skips can name it.
  int conv(unsigned oc, unsigned k, unsigned stride, unsigned padding,
           Activation act = Activation::kRelu, int from = -1);
  int dwconv(unsigned k, unsigned stride, unsigned padding,
             Activation act = Activation::kRelu, int from = -1);
  int dense(std::uint64_t out_features, Activation act = Activation::kNone,
            int from = -1, bool int4_weights = false);
  int maxpool(unsigned window, unsigned stride, unsigned padding = 0,
              int from = -1);
  int global_avgpool(int from = -1);
  int resadd(int a, int b, Activation act = Activation::kRelu);
  int softmax(int from = -1);
  int layernorm(int from = -1);
  int gelu(int from = -1);
  int last() const { return static_cast<int>(layers_.size()) - 1; }

  Model build() { return Model(name_, std::move(layers_)); }

 private:
  int push(LayerSpec spec);
  std::string name_;
  std::vector<LayerSpec> layers_;
};

}  // namespace gemmini
