#pragma once
// Host-CPU cost models (substitute for FireSim-simulated Rocket and BOOM
// cores; see DESIGN.md §1).
//
// The paper's host CPUs matter in three ways: (1) as the *baseline* running
// whole DNNs in software (Fig. 7 speedups are relative to the in-order
// Rocket), (2) as the worker for software stages that stay on the CPU
// (im2col when the accelerator lacks the on-the-fly unit; softmax, layernorm
// and GELU for BERT; data-marshalling between layers), and (3) as the source
// of per-kernel dispatch overhead (RoCC command issue, driver bookkeeping).
//
// Calibration targets, from the paper:
//  * ResNet50 on Rocket runs ~2,670x slower than the accelerator at 22.8 FPS
//    => ~28.5 cycles per int8 MAC on Rocket (scalar loads + MAC + loop
//    overhead on an in-order single-issue core).
//  * BOOM is ~2.36x faster on dense kernels (2670/1130).
//  * Without the im2col unit, a BOOM host doubles end-to-end CNN
//    performance over a Rocket host (Fig. 7) => scalar im2col costs ~16
//    cycles/byte on Rocket (address arithmetic + bounds checks + byte
//    load/store per element) and ~6 on BOOM.

#include <cstdint>
#include <string>

#include "src/base/status.h"
#include "src/base/types.h"

namespace gemmini {

enum class CpuClass : std::uint8_t {
  kRocket,  ///< in-order, single-issue, low-power
  kBoom,    ///< out-of-order, wide-issue, server-class
};

inline const char* cpu_class_name(CpuClass c) {
  return c == CpuClass::kRocket ? "rocket" : "boom";
}

struct CpuCostModel {
  std::string name = "rocket";
  CpuClass cpu_class = CpuClass::kRocket;

  double cycles_per_mac_i8 = 28.5;   ///< dense conv/GEMM inner loop
  double cycles_per_mac_f32 = 34.0;  ///< scalar FPU MAC
  double im2col_cycles_per_byte = 16.0;
  double move_cycles_per_byte = 4.0;      ///< memcpy/layout marshalling
  double pool_cycles_per_cmp = 3.0;       ///< per window comparison
  double special_cycles_per_elem = 45.0;  ///< softmax/layernorm/GELU
  double resadd_cycles_per_byte = 6.0;
  double kernel_dispatch_cycles = 150.0;  ///< per accelerator kernel launch

  static CpuCostModel rocket();
  static CpuCostModel boom();

  /// Every per-unit cost must be positive: a zero or negative cost silently
  /// zeroes whole cycle categories (and the speedup denominators built on
  /// them). Throws ConfigError.
  void validate() const {
    GEMMINI_CONFIG_REQUIRE(!name.empty(), "cpu cost model needs a name");
    GEMMINI_CONFIG_REQUIRE(
        cycles_per_mac_i8 > 0 && cycles_per_mac_f32 > 0,
        "cpu '" << name << "': cycles-per-MAC must be positive");
    GEMMINI_CONFIG_REQUIRE(
        im2col_cycles_per_byte > 0 && move_cycles_per_byte > 0 &&
            pool_cycles_per_cmp > 0 && special_cycles_per_elem > 0 &&
            resadd_cycles_per_byte > 0,
        "cpu '" << name << "': per-byte/per-element costs must be positive");
    GEMMINI_CONFIG_REQUIRE(
        kernel_dispatch_cycles >= 0,
        "cpu '" << name << "': dispatch cost cannot be negative");
  }

  // ---- Whole-kernel estimates (all return cycles) -------------------------
  Cycle gemm_cycles(std::uint64_t macs, bool fp32 = false) const {
    return static_cast<Cycle>(
        static_cast<double>(macs) *
        (fp32 ? cycles_per_mac_f32 : cycles_per_mac_i8));
  }
  Cycle im2col_cycles(std::uint64_t bytes) const {
    return static_cast<Cycle>(static_cast<double>(bytes) *
                              im2col_cycles_per_byte);
  }
  Cycle move_cycles(std::uint64_t bytes) const {
    return static_cast<Cycle>(static_cast<double>(bytes) *
                              move_cycles_per_byte);
  }
  Cycle pool_cycles(std::uint64_t output_elems, unsigned window) const {
    return static_cast<Cycle>(static_cast<double>(output_elems) * window *
                              window * pool_cycles_per_cmp);
  }
  Cycle special_cycles(std::uint64_t elems) const {
    return static_cast<Cycle>(static_cast<double>(elems) *
                              special_cycles_per_elem);
  }
  Cycle resadd_cycles(std::uint64_t bytes) const {
    return static_cast<Cycle>(static_cast<double>(bytes) *
                              resadd_cycles_per_byte);
  }
  Cycle dispatch_cycles() const {
    return static_cast<Cycle>(kernel_dispatch_cycles);
  }
};

/// OS noise model (paper §III-C: context switches, page-table evictions and
/// other "unexpected events" only a full-stack environment exhibits). When
/// enabled, the runtime injects a context switch every `period_cycles`:
/// the CPU is preempted for `switch_cost_cycles` and the accelerator's TLBs
/// are flushed (ASID change).
struct OsNoiseModel {
  bool enabled = false;
  Cycle period_cycles = 1'000'000;  ///< ~1 ms at 1 GHz (Linux tick-ish)
  Cycle switch_cost_cycles = 8'000;

  /// The SoC charges `switch_cost_cycles` and re-arms the timer by
  /// `period_cycles`; a switch cost >= the period means the core never makes
  /// forward progress between preemptions (an infinite loop in the
  /// scheduler). Throws ConfigError.
  void validate() const {
    if (!enabled) return;
    GEMMINI_CONFIG_REQUIRE(period_cycles > 0,
                           "OS noise period must be positive");
    GEMMINI_CONFIG_REQUIRE(
        switch_cost_cycles < period_cycles,
        "OS context-switch cost (" << switch_cost_cycles
            << ") must be smaller than the switch period (" << period_cycles
            << ") or the core can never make progress");
  }
};

}  // namespace gemmini
