#include "src/model/lowering/tiling.h"

#include "src/base/status.h"
#include "src/runtime/conv.h"

namespace gemmini::lowering {

ConvShape conv_shape(const LayerSpec& layer, const TensorShape& in_shape) {
  const bool dw = layer.kind == LayerKind::kDepthwiseConv;
  ConvShape shape;
  shape.batch = 1;
  shape.ih = in_shape.h;
  shape.iw = in_shape.w;
  shape.ic = in_shape.c;
  shape.kh = layer.kh;
  shape.kw = layer.kw;
  shape.oc = dw ? in_shape.c : layer.oc;
  shape.stride = layer.stride;
  shape.padding = layer.padding;
  return shape;
}

MatmulLowering matmul_lowering(const Model& model, std::size_t layer) {
  const LayerSpec& l = model.layers()[layer];
  const TensorShape& in_shape = model.shape(model.producer(layer));
  MatmulLowering out;
  switch (l.kind) {
    case LayerKind::kConv: {
      const ConvShape shape = conv_shape(l, in_shape);
      out.dims = {shape.out_rows(), shape.patch_cols(), shape.oc};
      out.count = 1;
      return out;
    }
    case LayerKind::kDepthwiseConv: {
      const ConvShape shape = conv_shape(l, in_shape);
      // One skinny matmul per channel.
      out.dims = {shape.out_rows(),
                  static_cast<std::uint64_t>(l.kh) * l.kw, 1};
      out.count = in_shape.c;
      return out;
    }
    case LayerKind::kDense: {
      const std::uint64_t in_features =
          in_shape.is_matrix
              ? in_shape.cols
              : static_cast<std::uint64_t>(in_shape.h) * in_shape.w *
                    in_shape.c;
      const std::uint64_t rows = in_shape.is_matrix ? in_shape.rows : 1;
      out.dims = {rows, in_features, l.out_features};
      out.count = 1;
      return out;
    }
    default:
      out.count = 0;
      return out;
  }
}

void assign_tiles(sim::Plan& plan, const GemminiConfig& cfg,
                  const TilingPolicy& policy) {
  const Model& model = plan.model();
  GEMMINI_CHECK_MSG(plan.layers.size() == model.layers().size(),
                    "assign_tiles requires assign_placement first");
  plan.tiling_policy = policy.name();
  const std::size_t elem = cfg.input_bytes();

  for (std::size_t i = 1; i < plan.layers.size(); ++i) {
    sim::PlannedLayer& pl = plan.layers[i];
    const LayerSpec& l = model.layers()[i];
    if (pl.target == LayerTarget::kNone) continue;

    const MatmulLowering mm = matmul_lowering(model, i);
    if (mm.count > 0) {
      // Problem dims are recorded whichever side runs the layer (emission's
      // CPU fallback needs them too); the staging tile and DMA traffic only
      // exist for accelerator-placed matmuls.
      pl.has_matmul = true;
      pl.matmul.dims = mm.dims;
      pl.matmul.count = mm.count;
      if (pl.target != LayerTarget::kAccel) continue;
      pl.matmul.tile = policy.choose(cfg, i, mm.dims);
      // Traffic is finalized after allocation decides whether a bias buffer
      // exists; record the bias-free figure now so the plan is never
      // inconsistent mid-pipeline.
      pl.dma_bytes =
          mm.count * modeled_dma_bytes(cfg, mm.dims, pl.matmul.tile);
      continue;
    }
    if (pl.target != LayerTarget::kAccel) continue;

    // Streaming accelerator kernels: traffic is shape-determined.
    const TensorShape& out_shape = model.shape(i);
    if (l.kind == LayerKind::kResAdd) {
      pl.dma_bytes = 3 * out_shape.elems() * elem;  // two in, one out
    } else if (l.kind == LayerKind::kMaxPool) {
      const TensorShape& in_shape = model.shape(model.producer(i));
      pl.dma_bytes = (in_shape.elems() + out_shape.elems()) * elem;
    }
  }
}

}  // namespace gemmini::lowering
