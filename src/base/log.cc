#include "src/base/log.h"

#include <atomic>

namespace gemmini {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[gemmini %s] %s\n", level_tag(level), msg.c_str());
}
}  // namespace detail

}  // namespace gemmini
