#pragma once
// Page-table walker.
//
// The paper's case-study SoC has exactly one PTW shared by the host CPU and
// the accelerator ("Our design includes only one PTW, shared by both the CPU
// and the accelerator, which is suitable for low-power devices"), so walks
// serialize. Each walk performs kPtLevels dependent 8-byte loads through the
// *shared memory system*, which means hot PTEs naturally get cached in L2 —
// the same effect the RTL exhibits.

#include "src/base/stats.h"
#include "src/base/types.h"
#include "src/mem/memsys.h"
#include "src/vm/page_table.h"

namespace gemmini {

struct PtwConfig {
  Cycle setup_latency = 2;  ///< request hand-off into the walker
  /// Rocket's PTW caches non-leaf PTEs, so walks within a warm 2 MB region
  /// load only the leaf level from memory. 0 disables the cache.
  unsigned pte_cache_entries = 8;
};

class PageTableWalker {
 public:
  PageTableWalker(const PtwConfig& cfg, MemorySystem& mem,
                  RequestorId requestor)
      : cfg_(cfg), mem_(mem), requestor_(requestor) {}

  struct WalkResult {
    PAddr ppn_base = 0;  ///< physical page base of the leaf
    Cycle done = 0;
  };

  /// Walks `va` in address space `as`, starting no earlier than `t`.
  /// A single walker port: concurrent walks queue behind each other.
  WalkResult walk(const AddressSpace& as, VAddr va, Cycle t);

  const StatSet& stats() const { return stats_; }
  void reset_time() { busy_until_ = 0; }

 private:
  bool pte_cache_lookup(PAddr pte_addr);
  void pte_cache_fill(PAddr pte_addr);

  PtwConfig cfg_;
  MemorySystem& mem_;
  RequestorId requestor_;
  Cycle busy_until_ = 0;
  StatSet stats_;

  struct PteCacheEntry {
    bool valid = false;
    PAddr addr = 0;
    std::uint64_t lru = 0;
  };
  std::vector<PteCacheEntry> pte_cache_;
  std::uint64_t pte_cache_clock_ = 0;
};

}  // namespace gemmini
