#include "src/mem/phys_mem.h"

#include <algorithm>

namespace gemmini {

std::uint8_t* PhysMem::page_for(PAddr addr) {
  const std::uint64_t pfn = page_number(addr);
  auto it = pages_.find(pfn);
  if (it == pages_.end()) {
    auto page = std::make_unique<std::uint8_t[]>(kPageBytes);
    std::memset(page.get(), 0, kPageBytes);
    it = pages_.emplace(pfn, std::move(page)).first;
  }
  return it->second.get();
}

const std::uint8_t* PhysMem::page_if_present(PAddr addr) const {
  auto it = pages_.find(page_number(addr));
  return it == pages_.end() ? nullptr : it->second.get();
}

void PhysMem::write(PAddr addr, const void* src, std::size_t bytes) {
  const auto* p = static_cast<const std::uint8_t*>(src);
  while (bytes > 0) {
    const std::size_t off = page_offset(addr);
    const std::size_t chunk = std::min(bytes, kPageBytes - off);
    std::memcpy(page_for(addr) + off, p, chunk);
    addr += chunk;
    p += chunk;
    bytes -= chunk;
  }
}

void PhysMem::read(PAddr addr, void* dst, std::size_t bytes) const {
  auto* p = static_cast<std::uint8_t*>(dst);
  while (bytes > 0) {
    const std::size_t off = page_offset(addr);
    const std::size_t chunk = std::min(bytes, kPageBytes - off);
    if (const std::uint8_t* page = page_if_present(addr)) {
      std::memcpy(p, page + off, chunk);
    } else {
      std::memset(p, 0, chunk);  // untouched memory reads as zero
    }
    addr += chunk;
    p += chunk;
    bytes -= chunk;
  }
}

}  // namespace gemmini
