#include "src/accel/exec_unit.h"

#include <algorithm>

#include "src/base/fixed.h"

namespace gemmini {

void ExecUnit::latch_b(LocalAddr b, unsigned rows, unsigned cols) {
  // PRELOAD with a garbage B address *keeps* the currently latched tile —
  // the idiom the software stack uses to reuse one weight tile across many
  // A tiles (preload(GARBAGE, C') + compute.accumulated).
  if (b.is_garbage()) return;
  const unsigned dim = cfg_.dim();
  GEMMINI_CHECK(rows <= dim && cols <= dim);
  std::fill(b_i32_.begin(), b_i32_.end(), 0);
  std::fill(b_f32_.begin(), b_f32_.end(), 0.0f);
  GEMMINI_CHECK_MSG(!b.is_acc(), "PRELOAD reads B from the scratchpad");
  for (unsigned r = 0; r < rows; ++r) {
    const std::uint8_t* row = sp_.row_ptr(b.row() + r);
    if (cfg_.dtype == DType::kInt8) {
      for (unsigned c = 0; c < cols; ++c) {
        b_i32_[r * dim + c] =
            static_cast<std::int8_t>(row[c]);
      }
    } else {
      const float* f = reinterpret_cast<const float*>(row);
      for (unsigned c = 0; c < cols; ++c) b_f32_[r * dim + c] = f[c];
    }
  }
}

Cycle ExecUnit::preload(const Instruction& inst, Cycle start,
                        bool functional) {
  stats_.counter("preloads").add();
  const Cycle cycles = model_.preload_cycles(inst.rows);
  Cycle t;
  if (!inst.local.is_garbage()) {
    // Stream B rows out of the scratchpad (waits for the banks).
    t = sp_.reserve(inst.local.row(), inst.rows, start, cycles);
  } else {
    t = start + cycles;
  }
  if (functional) latch_b(inst.local, inst.rows, inst.cols);
  c_dest_ = inst.local2;
  c_rows_ = inst.rows2;
  c_cols_ = inst.cols2;
  return t;
}

Cycle ExecUnit::compute(const Instruction& inst, const ExConfigState& ex,
                        Cycle start, bool functional,
                        std::uint64_t& macs_out) {
  const unsigned dim = cfg_.dim();
  const unsigned m = inst.rows;       // A rows
  const unsigned k = inst.cols;       // A cols == B rows
  const unsigned n = c_cols_ == 0 ? dim : c_cols_;
  GEMMINI_CHECK(m <= dim && k <= dim && n <= dim);
  stats_.counter("computes").add();
  macs_out += static_cast<std::uint64_t>(m) * k * n;

  // Timing: stream A out of the scratchpad, flow through the array, land in
  // the destination memory.
  Cycle t = start;
  if (!inst.local.is_garbage()) {
    t = sp_.reserve(inst.local.row(), m, t, 1);
  }
  const bool pipelined = inst.op == Opcode::kComputeAccumulated;
  Cycle lat = model_.compute_cycles(ex.dataflow, m, k, pipelined);
  if (ex.a_transpose) {
    GEMMINI_CHECK_MSG(cfg_.has_transposer,
                      "a_transpose requires the transposer block");
    lat += dim;  // extra pass through the transposer pipeline
    stats_.counter("transposes").add();
  }
  t += lat;
  if (!c_dest_.is_garbage()) {
    if (c_dest_.is_acc()) {
      t = acc_.reserve(c_dest_.row(), c_rows_ ? c_rows_ : m, t - 1, 1);
    } else {
      t = sp_.reserve(c_dest_.row(), c_rows_ ? c_rows_ : m, t - 1, 1);
    }
  }

  if (!functional || c_dest_.is_garbage()) return t;

  // ---- Functional matmul: C = op(A) x B + D --------------------------------
  auto a_elem_i8 = [&](unsigned r, unsigned c) -> std::int32_t {
    if (inst.local.is_garbage()) return 0;
    const unsigned rr = ex.a_transpose ? c : r;
    const unsigned cc = ex.a_transpose ? r : c;
    if (rr >= m || cc >= k) return 0;
    return static_cast<std::int8_t>(sp_.row_ptr(inst.local.row() + rr)[cc]);
  };
  auto a_elem_f32 = [&](unsigned r, unsigned c) -> float {
    if (inst.local.is_garbage()) return 0.0f;
    const unsigned rr = ex.a_transpose ? c : r;
    const unsigned cc = ex.a_transpose ? r : c;
    if (rr >= m || cc >= k) return 0.0f;
    return reinterpret_cast<const float*>(
        sp_.row_ptr(inst.local.row() + rr))[cc];
  };

  const unsigned out_rows = c_rows_ ? c_rows_ : m;
  const LocalAddr d = inst.local2;
  for (unsigned r = 0; r < out_rows; ++r) {
    if (cfg_.dtype == DType::kInt8) {
      std::vector<std::int32_t> out(n, 0);
      for (unsigned c = 0; c < n; ++c) {
        std::int64_t sum = 0;
        for (unsigned kk = 0; kk < k; ++kk) {
          sum += static_cast<std::int64_t>(a_elem_i8(r, kk)) *
                 b_i32_[kk * dim + c];
        }
        if (!d.is_garbage() && r < inst.rows2 && c < inst.cols2) {
          if (d.is_acc()) {
            sum += acc_.row_i32(d.row() + r)[c];
          } else {
            sum += static_cast<std::int8_t>(sp_.row_ptr(d.row() + r)[c]);
          }
        }
        out[c] = static_cast<std::int32_t>(std::clamp<std::int64_t>(
            sum, INT32_MIN, INT32_MAX));
      }
      if (c_dest_.is_acc()) {
        acc_.write_row_i32(c_dest_.row() + r, out.data(), n,
                           c_dest_.accumulate());
      } else {
        std::uint8_t* row = sp_.row_ptr(c_dest_.row() + r);
        for (unsigned c = 0; c < n; ++c) {
          row[c] = static_cast<std::uint8_t>(
              quantize_i32_to_i8(out[c], ex.out_shift, ex.activation));
        }
      }
    } else {
      std::vector<float> out(n, 0.0f);
      for (unsigned c = 0; c < n; ++c) {
        float sum = 0.0f;
        for (unsigned kk = 0; kk < k; ++kk) {
          sum += a_elem_f32(r, kk) * b_f32_[kk * dim + c];
        }
        if (!d.is_garbage() && r < inst.rows2 && c < inst.cols2) {
          if (d.is_acc()) {
            sum += acc_.row_f32(d.row() + r)[c];
          } else {
            sum += reinterpret_cast<const float*>(
                sp_.row_ptr(d.row() + r))[c];
          }
        }
        out[c] = sum;
      }
      if (c_dest_.is_acc()) {
        acc_.write_row_f32(c_dest_.row() + r, out.data(), n,
                           c_dest_.accumulate());
      } else {
        float* row = reinterpret_cast<float*>(sp_.row_ptr(c_dest_.row() + r));
        for (unsigned c = 0; c < n; ++c) {
          row[c] = apply_activation_f32(out[c], ex.activation);
        }
      }
    }
  }
  return t;
}

}  // namespace gemmini
