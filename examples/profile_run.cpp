// Profiling walkthrough: the quickstart model under the cycle-level trace
// subsystem (src/trace/).
//
// One builder call attaches a preallocated ring-buffer recorder to every
// timed component — DMA bursts, exec-unit tiles, bus grants and waits, DRAM
// row hits/misses per bank, L2 hits/misses, TLB misses, page walks, CPU
// steps. Tracing is purely observational: the cycle count below is
// bit-identical to an untraced run.
//
// After the run the session answers the question flat counters cannot:
// *where did each layer's cycles actually go?* The bottleneck table
// decomposes every layer's span into disjoint compute / DMA / bus-wait /
// DRAM / translation / CPU components (they sum exactly to the span) and
// cross-references the roofline model — measured MACs/cycle vs. what the
// layer's arithmetic intensity makes attainable.
//
//   $ ./profile_run [trace.json]    # then open in https://ui.perfetto.dev

#include <cstdio>

#include "src/core/gemmini.h"

using namespace gemmini;

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "trace.json";

  // The quickstart configuration: paper-default 16x16 array, Fig. 9 "Base"
  // memory partitioning, scaled SqueezeNet.
  SocConfig cfg = SocConfig::base_1mb_l2();
  cfg.accel.has_im2col = true;
  const Model model = zoo::squeezenet_v11(64);

  sim::Session session = sim::Session::builder(cfg)
                             .trace(trace::TraceConfig::enabled_default())
                             .build();
  const sim::Report report = session.run(model);

  std::printf("%s on %s: %llu cycles (%.2f ms at %.1f GHz), %.1fx vs CPU\n",
              model.name().c_str(), cfg.name.c_str(),
              static_cast<unsigned long long>(report.cycles),
              report.seconds * 1e3, cfg.accel.clock_ghz, report.speedup);
  std::printf("%zu trace events recorded, %llu dropped\n\n",
              session.trace_buffer().size(),
              static_cast<unsigned long long>(
                  session.trace_buffer().dropped()));

  // Top-3 bottleneck components per layer, straight off the Report (the
  // traced run attributed them already). A conv running at the roof shows
  // "compute"; a residual add shows "dma"/"dram" (memory-bound, §V-B); a
  // softmax shows "cpu" — the paper's CPU-burden story, now per layer.
  for (const trace::LayerBottleneck& l : report.bottlenecks) {
    std::printf("layer %2zu %-10s (%-7s) span %9llu cyc | ", l.layer,
                l.kind.c_str(), l.tag.c_str(),
                static_cast<unsigned long long>(l.span));
    const auto top = l.top_components();
    for (std::size_t i = 0; i < top.size() && i < 3; ++i) {
      std::printf("%s%s %.1f%%", i ? "  " : "", top[i].first.c_str(),
                  100.0 * static_cast<double>(top[i].second) /
                      static_cast<double>(l.span));
    }
    std::printf(" | %.1f/%.1f MACs/cyc%s\n", l.measured_macs_per_cycle,
                l.attainable_macs_per_cycle,
                l.memory_bound ? " (mem-bound)" : "");
  }

  // The same table rides inside the Report (and its JSON) whenever the
  // session traces, so sweeps can carry one profiled point.
  if (!session.write_trace(out_path)) {
    std::printf("ERROR: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s — open it in https://ui.perfetto.dev (one track "
              "per core x unit)\n", out_path.c_str());
  return 0;
}
