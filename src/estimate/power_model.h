#pragma once
// Analytic dynamic-power model for the spatial array.
//
// The paper reports the 256-PE systolic design consumes 3.0x the power of
// the vector design (at 500 MHz), attributed to its pipeline registers.
// Model: P = N_pe * p_mac + boundary_register_bits * p_flop, both scaled
// linearly with clock frequency. Fitting the 3.0x ratio with the register
// counts from the area model (10,240 vs 2,560 boundary bits) gives
// p_mac = 5 * p_flop per unit; absolute scale is set so the systolic
// 256-PE array draws ~60 mW at 500 MHz, typical of a 22nm array this size.

#include "src/arch/config.h"
#include "src/estimate/area_model.h"

namespace gemmini {

struct PowerModelConstants {
  double mac_uw_per_ghz = 20.0;     ///< per int8 MAC, per GHz
  double flop_uw_per_ghz = 4.0;     ///< per boundary register bit, per GHz
  double fp32_mac_multiplier = 4.0;
  double sram_uw_per_kb_per_ghz = 16.0;  ///< leakage+dynamic, coarse
};

class PowerModel {
 public:
  explicit PowerModel(PowerModelConstants constants = {}) : c_(constants) {}

  /// Spatial-array dynamic power in milliwatts at `ghz`.
  double spatial_array_mw(const SpatialArrayGeometry& g, DType dtype,
                          double ghz) const {
    const double mac = c_.mac_uw_per_ghz *
                       (dtype == DType::kInt8 ? 1.0 : c_.fp32_mac_multiplier);
    const double uw =
        g.num_pes() * mac +
        static_cast<double>(boundary_register_bits(g, dtype)) *
            c_.flop_uw_per_ghz;
    return uw * ghz / 1000.0;
  }

  /// Whole-accelerator power (array + local SRAMs) in milliwatts.
  double accelerator_mw(const GemminiConfig& cfg) const {
    const double sram_kb = static_cast<double>(cfg.sp_capacity_bytes +
                                               cfg.acc_capacity_bytes) /
                           1024.0;
    return spatial_array_mw(cfg.array, cfg.dtype, cfg.clock_ghz) +
           sram_kb * c_.sram_uw_per_kb_per_ghz * cfg.clock_ghz / 1000.0;
  }

  const PowerModelConstants& constants() const { return c_; }

 private:
  PowerModelConstants c_;
};

}  // namespace gemmini
