#pragma once
// sim::Sweep / sim::Experiment — the design-space-exploration driver.
//
// A Sweep is an ordered list of independent experiment points (one SocConfig
// + one Model each). `run()` fans the points across a pool of worker
// threads; every worker elaborates its *own* Session (own Soc, own memory
// system, own address spaces), so points never share mutable simulator state
// and the result vector is deterministic: byte-identical reports whether the
// sweep runs on one thread or sixteen. That property is what lets
// design-space sweeps use all host cores without giving up the golden-cycle
// reproducibility the repo's perf harness enforces.
//
//   sim::Sweep sweep;
//   for (const auto& cfg : configs)
//     sweep.add(cfg.name, cfg, zoo::resnet50(96));
//   std::vector<sim::Report> reports = sweep.run({.threads = 8});
//
// Experiment is the grid builder on top: give it a base SocConfig plus the
// axes to vary (array geometry, scratchpad size, L2 size, core count, model
// list) and it emits the cartesian-product Sweep with stable point names.
//
//   auto reports = sim::Experiment(SocConfig::base_1mb_l2())
//                      .geometries({{16, 16, 1, 1}, {1, 16, 16, 1}})
//                      .scratchpad_sizes({256 << 10, 512 << 10})
//                      .models(zoo::all_paper_models_scaled())
//                      .run();

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/energy/energy.h"
#include "src/llm/decode.h"
#include "src/model/graph.h"
#include "src/model/lowering/policy.h"
#include "src/serve/server.h"
#include "src/sim/report.h"
#include "src/sim/session.h"
#include "src/soc/soc.h"
#include "src/trace/trace.h"

namespace gemmini::sim {

/// One independent experiment: a config, a model, and how to run it.
/// `placement`/`tiling` select the lowering-pipeline policies for this
/// point (nullptr = the paper's default heuristics). Policy objects are
/// shared across worker threads, so they must be deterministic and
/// thread-safe under const access — every shipped policy is.
struct SweepPoint {
  std::string name;  ///< unique label, copied into Report::point
  SocConfig config;
  Model model;
  bool multicore = false;  ///< run one stream per core instead of core 0
  bool functional = false;
  std::uint64_t seed = 1;
  std::shared_ptr<const lowering::PlacementPolicy> placement;
  std::shared_ptr<const lowering::TilingPolicy> tiling;
  /// Cycle-level tracing for this point (disabled by default — tracing a
  /// whole grid would be enormous; see Experiment::trace_point). When
  /// enabled, the point's Report carries the bottleneck table and, if
  /// `trace.export_path` is set, the Perfetto trace.json is written there.
  trace::TraceConfig trace{};
  /// Fault campaign: > 0 reruns the point N times with fault seeds
  /// base+0..base+N-1, classifies each run against a fault-free golden run
  /// (masked / corrected / detected / sdc) and returns one Report whose
  /// timing numbers are the golden run's and whose `reliability` section
  /// carries the campaign. Requires `functional` (output comparison),
  /// single-core, and `config.faults.enabled`.
  unsigned campaign_runs = 0;
  /// Serving scenario: when `serve.enabled`, the point runs serve::Server
  /// (open-loop traffic + scheduler) instead of one inference, and the
  /// Report's `server` section carries the traffic statistics. `model` is
  /// then the default request class when `serve.classes` is empty.
  serve::ServeSpec serve{};
  /// LLM decode workload: when set, the point runs llm::run_decode (the
  /// KV-cache-resident WorkStream) instead of lowering `model` through the
  /// graph IR; `model` is the decode proxy model (labels / CPU baseline).
  std::optional<llm::DecodeConfig> llm;
  /// Telemetry for this point: the metric registry (and, when
  /// `sample_interval_cycles > 0`, the cycle-windowed sampler) rides every
  /// run path — Session, serve::Server, llm decode — and lands in the
  /// point's Report::metrics. Observational only; cheap enough to leave on
  /// for a whole grid (merge with sim::merge_metrics afterwards).
  metrics::MetricsConfig metrics{};
  /// Energy metering for this point (src/energy/): when active, the
  /// Session run paths (single inference, multicore, llm decode) carry the
  /// command-level DRAM/SRAM/MAC energy meter and the point's
  /// Report::energy section is filled. Observational only — golden cycles
  /// are bit-identical with the meter attached. The serve and
  /// fault-campaign paths ignore this field (their reports aggregate many
  /// runs; energy accounting there is out of scope).
  energy::EnergyConfig energy{};
};

struct SweepOptions {
  /// Worker threads; 0 = one per host hardware thread. Results do not
  /// depend on this value.
  unsigned threads = 0;
  /// Strict mode restores the historical contract: the first failing point
  /// (by point order, not thread timing) aborts the whole sweep with a
  /// RuntimeError. The default is fail-soft — a throwing point yields a
  /// Report with `status == "error"` while every other point completes.
  bool strict = false;
};

class Sweep {
 public:
  Sweep& add(SweepPoint point);
  /// Convenience: timing-mode single-core point.
  Sweep& add(std::string name, SocConfig config, Model model);

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const std::vector<SweepPoint>& points() const { return points_; }

  /// Runs every point, fanned across the worker pool, and returns reports
  /// in point order. Fail-soft by default: a point whose config fails
  /// validation (or whose run throws) contributes a Report with
  /// `status == "error"` and the exception message in `error`, and the rest
  /// of the grid still completes — one poisoned point cannot lose the other
  /// N-1 results. `opts.strict` restores the abort-on-first-failure
  /// contract; in both modes the outcome is deterministic across thread
  /// counts (errors are attributed by point order, not thread timing).
  std::vector<Report> run(const SweepOptions& opts = {}) const;

  /// Runs one point exactly as the pool workers would (used by the
  /// determinism test and anyone wanting a single point re-run).
  static Report run_point(const SweepPoint& point);

 private:
  std::vector<SweepPoint> points_;
};

/// Configuration for Experiment::search() — a successive-halving driver
/// over the experiment's grid. Candidates are first raced on cheap
/// low-fidelity proxies (a prefix of each model's layer list), the worst
/// `1 - 1/eta` fraction is dropped each rung, and only the survivors pay
/// for a full-fidelity evaluation. The final rung always runs the complete
/// model, so the winner's Report is exact; with `power_budget_watts > 0`
/// candidates whose full-fidelity average power exceeds the budget are
/// ranked infeasible (after every feasible candidate) regardless of their
/// objective value.
struct SearchSpec {
  enum class Objective {
    kCycles,  ///< minimize end-to-end cycles
    kEnergy,  ///< minimize total energy (requires Experiment::energy())
    kEdp,     ///< minimize energy-delay product (requires energy())
  };
  Objective objective = Objective::kCycles;
  /// Power-feasibility constraint on the *full-fidelity* run; 0 disables.
  /// Requires Experiment::energy() so average power is meterable.
  double power_budget_watts = 0;
  /// Halving factor: each rung keeps ceil(n / eta) candidates. Must be >= 2.
  unsigned eta = 2;
  /// Stop halving once this few candidates survive; they go straight to
  /// the full-fidelity rung. Must be >= 1.
  unsigned min_rung_points = 2;
  /// Layer-prefix fraction of the first (cheapest) rung, in (0, 1]. Each
  /// rung multiplies it by eta until it reaches 1. A fraction f evaluates
  /// the first max(1, ceil(layers * f)) layers of every model.
  double min_fraction = 0.25;
  /// Worker threads for each rung's sweep (see SweepOptions::threads).
  /// Results are byte-identical at any thread count.
  unsigned threads = 0;
};

/// One candidate's final-rung outcome, in rank order (best first).
struct SearchCandidate {
  std::string point;         ///< sweep-point label
  std::size_t grid_index = 0;  ///< position in the exhaustive grid
  Cycle cycles = 0;
  double energy_j = 0;
  double avg_power_watts = 0;
  double edp_joule_seconds = 0;
  double objective = 0;    ///< the value ranked on
  bool feasible = true;    ///< met the power budget (always true when 0)
  std::string status;      ///< "ok" or "error"
  std::string error;
};

/// One successive-halving rung: which points ran at which fidelity.
struct SearchRung {
  double fraction = 0;  ///< layer-prefix fraction (1 = full fidelity)
  std::vector<std::string> points;
};

struct SearchResult {
  /// True when at least one finalist completed and met the power budget.
  bool found = false;
  /// Winner's label and full-fidelity report (valid when `found`).
  std::string best_point;
  Report best;
  /// Every final-rung candidate, ranked: feasible before infeasible,
  /// errors last, objective ascending within each class.
  std::vector<SearchCandidate> finalists;
  /// The halving schedule actually executed, first (cheapest) rung first.
  std::vector<SearchRung> rungs;
  /// Total points simulated across all rungs (the cost the halving paid;
  /// compare against grid size x rung count for the exhaustive cost).
  std::size_t evaluations = 0;
};

/// Cartesian-product grid builder over the template's main design axes.
/// Unset axes stay at the base config's value. Point names encode only the
/// axes that vary, so reports stay readable at any grid size.
class Experiment {
 public:
  explicit Experiment(SocConfig base = SocConfig{});

  Experiment& model(Model m);
  Experiment& models(std::vector<Model> ms);
  Experiment& geometries(std::vector<SpatialArrayGeometry> gs);
  /// Scratchpad capacities (accumulator capacity is left at base).
  Experiment& scratchpad_sizes(std::vector<std::uint64_t> bytes);
  Experiment& l2_sizes(std::vector<std::uint64_t> bytes);
  Experiment& core_counts(std::vector<unsigned> cores);
  /// DRAM controller axes: channel counts, request schedulers, and address
  /// interleaving policies (src/mem/dram.h). Like every other per-axis
  /// setter they expand the cartesian grid; point labels encode the value
  /// ("2ch", "frfcfs", "il-xor").
  Experiment& dram_channels(std::vector<unsigned> channels);
  Experiment& dram_schedulers(std::vector<DramScheduler> schedulers);
  Experiment& dram_interleaves(std::vector<DramInterleave> interleaves);
  /// Pre-built config variants (e.g. the Fig. 9 Base/BigSP/BigL2 trio);
  /// mutually exclusive with the per-axis setters above.
  Experiment& configs(std::vector<SocConfig> cfgs);
  /// Lowering-policy grid axes (compose with every other axis, including
  /// explicit configs). Point labels use each policy's name(). An empty
  /// vector (the default) leaves the pipeline on the paper's heuristics.
  Experiment& placement_policies(
      std::vector<std::shared_ptr<const lowering::PlacementPolicy>> ps);
  Experiment& tiling_policies(
      std::vector<std::shared_ptr<const lowering::TilingPolicy>> ts);

  /// Fault-model axis: one grid column per FaultConfig (composes with every
  /// other axis, including explicit configs). Point labels use each
  /// config's `name`, falling back to "f<i>". A disabled entry (e.g. a
  /// fault-free baseline column) is carried through as-is.
  Experiment& fault_configs(std::vector<fault::FaultConfig> fcs);
  /// Runs every fault-enabled point as an N-run seeded campaign (see
  /// SweepPoint::campaign_runs). Implies nothing for fault-free points.
  /// Requires functional() and single-core points.
  Experiment& fault_campaign(unsigned runs);
  /// Serving scenario (src/serve/): every point runs serve::Server with
  /// this spec instead of a single inference. When `spec.classes` is
  /// empty, each point serves its own model as a single request class
  /// (deadline = spec.default_deadline_cycles). Composes with every config
  /// axis; mutually exclusive with fault_campaign().
  Experiment& serve(serve::ServeSpec spec);
  /// LLM decode workload (src/llm/): every point runs the autoregressive
  /// decode WorkStream built from this base config instead of a graph-IR
  /// inference; the proxy model supplies point labels. Composes with every
  /// config axis (DRAM channels/schedulers, geometry, ...); mutually
  /// exclusive with model()/models(), serve() and fault_campaign().
  Experiment& llm(llm::DecodeConfig base);
  /// LLM axes (require llm()): one grid column per value, overriding the
  /// base decode config. Labels come from DecodeConfig::label(), which
  /// encodes batch ("b4"), decode steps ("t8"), layout and int4.
  Experiment& llm_batches(std::vector<unsigned> batches);
  Experiment& llm_kv_layouts(std::vector<llm::KvLayout> layouts);
  Experiment& llm_decode_steps(std::vector<std::uint64_t> steps);
  Experiment& llm_int4(std::vector<bool> int4);
  /// Serving axis: one grid column per offered load (requests per
  /// megacycle), overriding the ServeSpec's arrival rate. Labels encode
  /// the value ("load2.5"). Requires serve().
  Experiment& offered_loads(std::vector<double> loads);
  /// Serving axis: one grid column per scheduler policy, overriding the
  /// ServeSpec's scheduler. Labels use ServeConfig::label() ("fifo",
  /// "edf", "batch4"). Requires serve().
  Experiment& serve_policies(std::vector<serve::ServeConfig> policies);
  /// Forwarded into SweepOptions::strict by run().
  Experiment& strict(bool on = true);

  Experiment& multicore(bool on = true);
  Experiment& functional(bool on = true);
  Experiment& seed(std::uint64_t s);

  /// Traces exactly one sweep point (cycle-level events + bottleneck table
  /// in its Report, trace.json at `cfg.export_path` if set). `point_name`
  /// must match the point's final label — the same string reports carry in
  /// Report::point; sweep() throws if no point matches.
  Experiment& trace_point(std::string point_name,
                          trace::TraceConfig cfg =
                              trace::TraceConfig::enabled_default());

  /// Telemetry for *every* sweep point (unlike trace_point, metrics are
  /// cheap enough to leave on grid-wide); see SweepPoint::metrics.
  Experiment& metrics(metrics::MetricsConfig cfg =
                          metrics::MetricsConfig::enabled_default());

  /// Energy metering for *every* sweep point; see SweepPoint::energy.
  /// Required by search() when the objective or the power budget needs
  /// energy numbers.
  Experiment& energy(energy::EnergyConfig cfg =
                         energy::EnergyConfig::enabled_default());

  /// Expands the grid into a Sweep (configs x models, in axis order).
  Sweep sweep() const;
  /// sweep().run(opts).
  std::vector<Report> run(const SweepOptions& opts = {}) const;

  /// Successive-halving design-space search over this experiment's grid
  /// (see SearchSpec). Works on plain inference grids only — serve(),
  /// fault_campaign() and llm() points have no layer-prefix proxy and are
  /// rejected. Deterministic: byte-identical SearchResult at any
  /// `spec.threads`, and the final rung's winner matches what an exhaustive
  /// full-fidelity sweep would pick under the same objective + budget.
  SearchResult search(const SearchSpec& spec = {}) const;

 private:
  SocConfig base_;
  std::vector<Model> models_;
  std::vector<SpatialArrayGeometry> geometries_;
  std::vector<std::uint64_t> sp_sizes_;
  std::vector<std::uint64_t> l2_sizes_;
  std::vector<unsigned> core_counts_;
  std::vector<unsigned> dram_channels_;
  std::vector<DramScheduler> dram_schedulers_;
  std::vector<DramInterleave> dram_interleaves_;
  std::vector<SocConfig> explicit_configs_;
  std::vector<std::shared_ptr<const lowering::PlacementPolicy>>
      placement_policies_;
  std::vector<std::shared_ptr<const lowering::TilingPolicy>> tiling_policies_;
  std::vector<fault::FaultConfig> fault_configs_;
  serve::ServeSpec serve_spec_{};
  std::vector<double> offered_loads_;
  std::vector<serve::ServeConfig> serve_policies_;
  std::optional<llm::DecodeConfig> llm_base_;
  std::vector<unsigned> llm_batches_;
  std::vector<llm::KvLayout> llm_layouts_;
  std::vector<std::uint64_t> llm_steps_;
  std::vector<bool> llm_int4_;
  unsigned campaign_runs_ = 0;
  bool strict_ = false;
  bool multicore_ = false;
  bool functional_ = false;
  std::uint64_t seed_ = 1;
  std::string trace_point_name_;
  trace::TraceConfig trace_cfg_{};
  metrics::MetricsConfig metrics_cfg_{};
  energy::EnergyConfig energy_cfg_{};
};

}  // namespace gemmini::sim
