#pragma once
// The five DNNs of the paper's evaluation (Fig. 7): ResNet-50, AlexNet,
// SqueezeNet v1.1, MobileNetV2, and BERT-base. Full layer tables, built with
// the graph-IR builder. Each returns a validated Model; `scaled` variants
// with reduced input resolution exist for functional end-to-end tests.

#include "src/model/graph.h"

namespace gemmini::zoo {

/// ResNet-50 (He et al.): 53 convolutions + FC, with bottleneck residual
/// blocks. ~4.1 GMACs at 224x224.
Model resnet50(unsigned input_hw = 224);

/// AlexNet: 5 convolutions + 3 FC layers. ~0.72 GMACs at 227x227.
Model alexnet(unsigned input_hw = 227);

/// SqueezeNet v1.1: fire modules (squeeze 1x1 -> expand 1x1 + 3x3).
/// ~0.36 GMACs at 224x224.
Model squeezenet_v11(unsigned input_hw = 224);

/// MobileNetV2: inverted residual bottlenecks with depthwise convolutions.
/// ~0.31 GMACs at 224x224.
Model mobilenet_v2(unsigned input_hw = 224);

/// BERT-base encoder stack: 12 layers of multi-head attention (fused per-
/// head score/context matmuls) + FFN, seq length configurable. ~11.2 GMACs
/// at seq 128.
Model bert_base(unsigned seq_len = 128, unsigned num_layers = 12);

/// All five, in the order the paper plots them.
std::vector<Model> all_paper_models();

/// The same five at reduced input resolution / depth — small enough for
/// functional end-to-end tests and multi-point sweeps while still covering
/// every layer kind (conv, depthwise, dense, pools, resadd, attention).
std::vector<Model> all_paper_models_scaled();

}  // namespace gemmini::zoo
