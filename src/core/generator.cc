#include "src/core/generator.h"

namespace gemmini {

Generator::Generator(const SocConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  soc_ = std::make_unique<Soc>(cfg_);
}

RunReport Generator::make_report(const CoreResult& r,
                                 const Model& model) const {
  RunReport rep;
  rep.cycles = r.finish;
  rep.seconds =
      static_cast<double>(r.finish) / (cfg_.accel.clock_ghz * 1e9);
  rep.fps = rep.seconds > 0 ? 1.0 / rep.seconds : 0.0;
  rep.cpu_baseline = cpu_baseline_cycles(model, cfg_.cpu);
  rep.speedup = r.finish == 0
                    ? 0.0
                    : static_cast<double>(rep.cpu_baseline) /
                          static_cast<double>(r.finish);
  rep.cycles_by_tag = r.cycles_by_tag;
  rep.accel = r.accel;
  rep.array_utilization = r.accel.utilization(cfg_.accel, r.finish);
  return rep;
}

RunReport Generator::run_model(const Model& model) {
  soc_->reset_all();
  const LoweredModel lowered =
      lower_model(model, cfg_.accel, cfg_.cpu, soc_->address_space(0));
  const CoreResult r = soc_->run(lowered.stream);
  return make_report(r, model);
}

std::vector<RunReport> Generator::run_model_multicore(const Model& model) {
  soc_->reset_all();
  std::vector<LoweredModel> lowered;
  std::vector<const WorkStream*> streams;
  lowered.reserve(cfg_.cores);
  for (unsigned c = 0; c < cfg_.cores; ++c) {
    lowered.push_back(lower_model(model, cfg_.accel, cfg_.cpu,
                                  soc_->address_space(c)));
  }
  for (const auto& l : lowered) streams.push_back(&l.stream);
  const auto results = soc_->run_parallel(streams);
  std::vector<RunReport> reports;
  reports.reserve(results.size());
  for (const auto& r : results) reports.push_back(make_report(r, model));
  return reports;
}

AreaBreakdown Generator::area() const {
  return area_model_.breakdown(cfg_.accel,
                               cfg_.cpu.cpu_class == CpuClass::kBoom);
}

double Generator::fmax_ghz() const {
  return timing_model_.fmax_ghz(cfg_.accel.array, cfg_.accel.dtype);
}

double Generator::power_mw() const {
  return power_model_.accelerator_mw(cfg_.accel);
}

std::string Generator::params_header() const {
  return generate_params_header(cfg_.accel);
}

}  // namespace gemmini
