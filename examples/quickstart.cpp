// Quickstart: generate an accelerator, multiply two matrices on it, and
// check the result against the CPU reference — the "hello world" of the
// low-level C API (paper §III-B).
//
//   $ ./example_quickstart

#include <cstdio>

#include "src/core/gemmini.h"

using namespace gemmini;

int main() {
  // 1. Configure the generator: a 16x16 weight-stationary systolic array
  //    with a 256 KB scratchpad — the paper's default instantiation.
  GemminiConfig cfg = GemminiConfig::paper_default();
  std::printf("Generated '%s': %ux%u PEs, %lu KB scratchpad, %lu KB acc\n",
              cfg.name.c_str(), cfg.array.dim_rows(), cfg.array.dim_cols(),
              static_cast<unsigned long>(cfg.sp_capacity_bytes / 1024),
              static_cast<unsigned long>(cfg.acc_capacity_bytes / 1024));

  // 2. Stand up a single-accelerator SoC in functional mode.
  SocConfig soc_cfg;
  soc_cfg.accel = cfg;
  Soc soc(soc_cfg);
  soc.set_functional(true);
  AddressSpace& as = soc.address_space(0);

  // 3. Allocate and fill matrices in the process's virtual address space.
  const std::uint64_t m = 64, k = 96, n = 48;
  Rng rng(2024);
  TensorI8 a({m, k}), b({k, n});
  a.randomize(rng);
  b.randomize(rng);
  const VAddr va = as.alloc(m * k + 4096);
  const VAddr vb = as.alloc(k * n + 4096);
  const VAddr vc = as.alloc(m * n + 4096);
  as.write_virt(va, a.data(), a.size());
  as.write_virt(vb, b.data(), b.size());

  // 4. Emit the tiled matmul with the runtime's auto-tiling heuristic and
  //    run it through the cycle-level accelerator model.
  MatmulParams p;
  p.a = va;
  p.b = vb;
  p.c = vc;
  p.m = m;
  p.k = k;
  p.n = n;
  p.out_shift = 10;
  p.act = Activation::kRelu;
  const Program prog = emit_tiled_matmul(cfg, p);
  std::printf("Program: %zu RoCC instructions\n", prog.size());

  Accelerator& accel = soc.accelerator(0);
  const Cycle cycles = accel.run(prog, as);

  // 5. Verify against the golden reference.
  TensorI8 expect({m, n}), got({m, n});
  ref::gemm_i8(a, b, nullptr, expect, 10, Activation::kRelu);
  as.read_virt(vc, got.data(), got.size());
  const bool ok = got == expect;

  const auto& rep = accel.report();
  std::printf("Ran %lu x %lu x %lu matmul in %lu cycles "
              "(%.1f%% array utilization): %s\n",
              static_cast<unsigned long>(m), static_cast<unsigned long>(k),
              static_cast<unsigned long>(n),
              static_cast<unsigned long>(cycles),
              100.0 * rep.utilization(cfg, cycles),
              ok ? "MATCHES reference" : "MISMATCH");

  // 6. The generator also emits the per-instantiation C header.
  std::printf("\n--- generated gemmini_params.h (excerpt) ---\n%.400s...\n",
              generate_params_header(cfg).c_str());
  return ok ? 0 : 1;
}
