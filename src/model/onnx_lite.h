#pragma once
// ONNX-lite: the push-button entry point of the software stack.
//
// The real Gemmini flow reads ONNX protobufs through onnxruntime; we ship a
// small line-oriented text format with the same role — describe a network,
// get a runnable WorkStream. Grammar (one directive per line, '#' comments):
//
//   model <name>
//   input <h> <w> <c>           | input_matrix <rows> <cols>
//   conv <oc> <k> <stride> <pad> [relu|relu6|none] [@<layer>]
//   dwconv <k> <stride> <pad> [relu|relu6|none] [@<layer>]
//   dense <out_features> [relu|relu6|none] [@<layer>]
//   maxpool <window> <stride> [<pad>] [@<layer>]
//   gavgpool [@<layer>]
//   resadd @<layer_a> @<layer_b> [relu|none]
//   softmax | layernorm | gelu [@<layer>]
//
// `@<layer>` references a previous layer's index (as printed by summary());
// without it a layer consumes its predecessor.

#include <istream>
#include <string>

#include "src/model/graph.h"

namespace gemmini {

/// Parses a model description. Throws RuntimeError with a line number on
/// malformed input.
Model parse_onnx_lite(std::istream& in);
Model parse_onnx_lite_string(const std::string& text);
Model load_onnx_lite_file(const std::string& path);

/// Serializes a model back to the text format (round-trip tested).
std::string to_onnx_lite(const Model& model);

}  // namespace gemmini
