// Fig. 7: end-to-end speedup of Gemmini-generated accelerators over an
// in-order (Rocket) CPU baseline, across five DNNs, two host CPUs, and
// with/without the on-the-fly im2col unit.
//
// Paper numbers to reproduce in *shape*:
//  * ResNet-50: 2,670x over Rocket (22.8 FPS @1GHz) with the im2col unit;
//    1,130x over BOOM.
//  * Without the im2col unit, a BOOM host doubles CNN performance over a
//    Rocket host (2.0x); with it, the host barely matters.
//  * AlexNet 79.3 FPS; SqueezeNet 1,760x; MobileNetV2 127x (18.7 FPS,
//    depthwise convs map poorly); BERT 144x (Amdahl: CPU-resident softmax/
//    layernorm/GELU dominate once matmuls are accelerated).
//
// GEMMINI_BENCH_FAST=1 shrinks inputs for smoke runs.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/gemmini.h"

using namespace gemmini;

int main() {
  std::printf("=== Fig. 7: speedup vs in-order CPU baseline ===\n\n");
  const bool fast = std::getenv("GEMMINI_BENCH_FAST") != nullptr;
  const unsigned hw = fast ? 96 : 224;

  struct Workload {
    Model model;
    double paper_speedup_rocket_im2col;  // 0 = not reported
    double paper_fps;                    // 0 = not reported
    bool cnn;
  };
  std::vector<Workload> workloads;
  workloads.push_back({zoo::resnet50(hw), 2670, 22.8, true});
  workloads.push_back({zoo::alexnet(fast ? 99 : 227), 0, 79.3, true});
  workloads.push_back({zoo::squeezenet_v11(hw), 1760, 0, true});
  workloads.push_back({zoo::mobilenet_v2(hw), 127, 18.7, true});
  workloads.push_back({zoo::bert_base(fast ? 32 : 128, fast ? 4 : 12),
                       144, 0, false});

  std::printf("%-16s %-9s %-8s %12s %10s %10s %s\n", "dnn", "host",
              "im2col", "cycles", "fps@1GHz", "speedup", "paper");
  for (const auto& w : workloads) {
    const Cycle rocket_baseline =
        cpu_baseline_cycles(w.model, CpuCostModel::rocket());
    double boom_over_rocket[2] = {0, 0};
    for (const bool unit : {false, true}) {
      if (!w.cnn && !unit) continue;  // im2col is a CNN question
      double totals[2];
      for (const CpuClass host : {CpuClass::kRocket, CpuClass::kBoom}) {
        SocConfig cfg = SocConfig::base_1mb_l2();
        cfg.accel.has_im2col = unit;
        cfg.cpu = host == CpuClass::kRocket ? CpuCostModel::rocket()
                                            : CpuCostModel::boom();
        sim::Session session = sim::Session::builder(cfg).build();
        const sim::Report r = session.run(w.model);
        totals[host == CpuClass::kBoom] = static_cast<double>(r.cycles);
        const double speedup =
            static_cast<double>(rocket_baseline) / static_cast<double>(r.cycles);
        std::string paper = "-";
        if (host == CpuClass::kRocket && unit &&
            w.paper_speedup_rocket_im2col > 0) {
          paper = std::to_string(
                      static_cast<int>(w.paper_speedup_rocket_im2col)) +
                  "x";
          if (w.paper_fps > 0) {
            paper += " / " + std::to_string(w.paper_fps).substr(0, 4) + "fps";
          }
        }
        std::printf("%-16s %-9s %-8s %12lu %10.1f %9.0fx %s\n",
                    w.model.name().c_str(), cpu_class_name(host),
                    w.cnn ? (unit ? "accel" : "cpu") : "n/a",
                    static_cast<unsigned long>(r.cycles), r.fps, speedup,
                    paper.c_str());
      }
      boom_over_rocket[unit] = totals[0] / totals[1];
    }
    if (w.cnn) {
      std::printf("  -> BOOM/Rocket end-to-end gain: %.2fx without im2col "
                  "unit (paper ~2.0x), %.2fx with it (paper ~1.0x)\n",
                  boom_over_rocket[0], boom_over_rocket[1]);
    }
    std::printf("\n");
  }
  return 0;
}
