// Data-staging heuristic tests: budget computation, greedy growth, manual
// override validation, and the "maximize staged data" property.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/model/lowering/policy.h"
#include "src/runtime/matmul.h"
#include "src/runtime/tiling.h"

namespace gemmini {
namespace {

TEST(TileBudget, HalvesForDoubleBuffering) {
  const GemminiConfig cfg = GemminiConfig::paper_default();
  const TileBudget b = tile_budget(cfg);
  // 256 KB sp -> 16384 rows; /2 (A|B split) /2 (double buffer) /16 (block)
  EXPECT_EQ(b.max_a_blocks, 16384u / 4 / 16);
  EXPECT_EQ(b.max_b_blocks, b.max_a_blocks);
  // 64 KB acc of int32 -> 1024 rows; /2 /16.
  EXPECT_EQ(b.max_c_blocks, 1024u / 2 / 16);
}

TEST(ChooseTiles, SmallMatmulFitsExactly) {
  const GemminiConfig cfg = GemminiConfig::paper_default();
  const TileShape t = choose_tiles(cfg, {16, 16, 16});
  EXPECT_EQ(t.i, 1u);
  EXPECT_EQ(t.k, 1u);
  EXPECT_EQ(t.j, 1u);
}

TEST(ChooseTiles, NeverExceedsBudget) {
  const GemminiConfig cfg = GemminiConfig::paper_default();
  const TileBudget b = tile_budget(cfg);
  for (const std::uint64_t m : {1ull, 100ull, 4096ull, 100000ull}) {
    for (const std::uint64_t k : {1ull, 64ull, 4096ull}) {
      for (const std::uint64_t n : {16ull, 1000ull, 8192ull}) {
        const TileShape t = choose_tiles(cfg, {m, k, n});
        EXPECT_LE(static_cast<std::uint64_t>(t.i) * t.k, b.max_a_blocks);
        EXPECT_LE(static_cast<std::uint64_t>(t.k) * t.j, b.max_b_blocks);
        EXPECT_LE(static_cast<std::uint64_t>(t.i) * t.j, b.max_c_blocks);
        EXPECT_GE(t.i, 1u);
      }
    }
  }
}

TEST(ChooseTiles, GrowsUntilConstraintBinds) {
  const GemminiConfig cfg = GemminiConfig::paper_default();
  const TileBudget b = tile_budget(cfg);
  const TileShape t = choose_tiles(cfg, {100000, 100000, 100000});
  // For a huge matmul, at least one constraint must be tight-ish: growing
  // any dimension further would overflow a budget.
  const bool i_blocked =
      static_cast<std::uint64_t>(t.i + 1) * t.k > b.max_a_blocks ||
      static_cast<std::uint64_t>(t.i + 1) * t.j > b.max_c_blocks;
  const bool k_blocked =
      static_cast<std::uint64_t>(t.i) * (t.k + 1) > b.max_a_blocks ||
      static_cast<std::uint64_t>(t.k + 1) * t.j > b.max_b_blocks;
  const bool j_blocked =
      static_cast<std::uint64_t>(t.k) * (t.j + 1) > b.max_b_blocks ||
      static_cast<std::uint64_t>(t.i) * (t.j + 1) > b.max_c_blocks;
  EXPECT_TRUE(i_blocked && k_blocked && j_blocked);
}

TEST(ChooseTiles, NeverLargerThanProblem) {
  const GemminiConfig cfg = GemminiConfig::paper_default();
  const TileShape t = choose_tiles(cfg, {20, 20, 20});  // 2x2x2 blocks
  EXPECT_LE(t.i, 2u);
  EXPECT_LE(t.k, 2u);
  EXPECT_LE(t.j, 2u);
}

TEST(ChooseTiles, BiggerScratchpadBiggerTiles) {
  GemminiConfig small = GemminiConfig::paper_default();
  small.sp_capacity_bytes = 64 * 1024;
  small.acc_capacity_bytes = 32 * 1024;
  GemminiConfig big = GemminiConfig::big_sp();
  const MatmulDims dims{10000, 10000, 10000};
  const TileShape ts = choose_tiles(small, dims);
  const TileShape tb = choose_tiles(big, dims);
  EXPECT_GT(static_cast<std::uint64_t>(tb.i) * tb.k * tb.j,
            static_cast<std::uint64_t>(ts.i) * ts.k * ts.j);
}

TEST(ValidateTiles, AcceptsBudgetEdge) {
  const GemminiConfig cfg = GemminiConfig::paper_default();
  const TileBudget b = tile_budget(cfg);
  EXPECT_NO_THROW(validate_tiles(
      cfg, TileShape{1, static_cast<unsigned>(b.max_a_blocks), 1}));
}

TEST(ValidateTiles, RejectsOverflowAndZero) {
  const GemminiConfig cfg = GemminiConfig::paper_default();
  EXPECT_THROW(validate_tiles(cfg, TileShape{10000, 10000, 1}), RuntimeError);
  EXPECT_THROW(validate_tiles(cfg, TileShape{0, 1, 1}), RuntimeError);
}

// ---- Edge cases -------------------------------------------------------------

TEST(ChooseTiles, DegenerateDimsSmallerThanDim) {
  // m/k/n all below DIM still need (and get) exactly one 1x1x1 tile.
  const GemminiConfig cfg = GemminiConfig::paper_default();
  for (const MatmulDims dims :
       {MatmulDims{1, 1, 1}, MatmulDims{3, 5, 7}, MatmulDims{15, 15, 15},
        MatmulDims{1, 4096, 1}}) {
    const TileShape t = choose_tiles(cfg, dims);
    EXPECT_EQ(t.i, 1u) << dims.m << "x" << dims.k << "x" << dims.n;
    EXPECT_EQ(t.j, 1u);
    // K can only grow toward the problem's own block count.
    const std::uint64_t kb = (dims.k + cfg.dim() - 1) / cfg.dim();
    EXPECT_LE(t.k, std::max<std::uint64_t>(1, kb));
  }
}

/// Smallest legal instantiation for tiling purposes: budgets of exactly one
/// DIM x DIM block for A, B and C.
GemminiConfig minimum_budget_config() {
  GemminiConfig cfg = GemminiConfig::paper_default();
  // sp_rows = capacity / dim = 64 rows -> /2 (A|B) /2 (dbuf) /16 = 1 block.
  cfg.sp_capacity_bytes = 64 * 16;
  // acc_rows = capacity / (dim * 4) = 32 rows -> /2 (dbuf) /16 = 1 block.
  cfg.acc_capacity_bytes = 32 * 16 * 4;
  return cfg;
}

TEST(TileBudget, MinimumConfigStagesExactlyOneBlock) {
  const GemminiConfig cfg = minimum_budget_config();
  const TileBudget b = tile_budget(cfg);
  EXPECT_EQ(b.max_a_blocks, 1u);
  EXPECT_EQ(b.max_b_blocks, 1u);
  EXPECT_EQ(b.max_c_blocks, 1u);
  // The heuristic degenerates gracefully: 1x1x1 for any problem size.
  const TileShape t = choose_tiles(cfg, {100000, 100000, 100000});
  EXPECT_EQ(t.i, 1u);
  EXPECT_EQ(t.k, 1u);
  EXPECT_EQ(t.j, 1u);
  // And the only acceptable manual tile is that same 1x1x1.
  EXPECT_NO_THROW(validate_tiles(cfg, TileShape{1, 1, 1}));
  EXPECT_THROW(validate_tiles(cfg, TileShape{1, 2, 1}), RuntimeError);
  EXPECT_THROW(validate_tiles(cfg, TileShape{2, 1, 1}), RuntimeError);
  EXPECT_THROW(validate_tiles(cfg, TileShape{1, 1, 2}), RuntimeError);
}

TEST(ValidateTiles, ManualTileRejectedAtEmission) {
  // A budget-violating manual tile must be refused by the program emitter,
  // not silently staged past the scratchpad's capacity.
  const GemminiConfig cfg = GemminiConfig::paper_default();
  const TileBudget b = tile_budget(cfg);
  MatmulParams p;
  p.a = 0x1000;
  p.b = 0x2000;
  p.c = 0x3000;
  p.m = p.k = p.n = 1024;
  p.tile = TileShape{static_cast<unsigned>(b.max_c_blocks + 1), 1, 1};
  EXPECT_THROW(emit_tiled_matmul(cfg, p), RuntimeError);
  // The same shape within budget is accepted.
  p.tile = TileShape{1, 1, 1};
  EXPECT_NO_THROW(emit_tiled_matmul(cfg, p));
}

// ---- GEMV shapes (LLM decode: m = 1, weight-dominated) ----------------------

TEST(ChooseTiles, GemvSingleRowStagesAlongK) {
  // Decode-step matmuls are 1 x K x N: one A row, weights dominating the
  // staged bytes. The tile must stay at i = 1 and spend the A/B budget on
  // K depth instead.
  const GemminiConfig cfg = GemminiConfig::paper_default();
  const TileBudget b = tile_budget(cfg);
  for (const MatmulDims dims :
       {MatmulDims{1, 256, 256}, MatmulDims{1, 256, 1024},
        MatmulDims{1, 4096, 64}, MatmulDims{1, 64, 16384}}) {
    const TileShape t = choose_tiles(cfg, dims);
    EXPECT_EQ(t.i, 1u) << dims.k << "x" << dims.n;
    EXPECT_GE(t.k, 1u);
    EXPECT_LE(static_cast<std::uint64_t>(t.k) * t.j, b.max_b_blocks);
    EXPECT_NO_THROW(validate_tiles(cfg, t));
  }
}

TEST(ChooseTiles, GemvKFarAboveScratchpadSaturatesBudget) {
  // A reduction dimension orders of magnitude past the scratchpad: the
  // heuristic must clamp K at the binding A/B budget, not overflow it.
  const GemminiConfig cfg = GemminiConfig::paper_default();
  const TileBudget b = tile_budget(cfg);
  const MatmulDims dims{1, 10'000'000, 16};
  const TileShape t = choose_tiles(cfg, dims);
  EXPECT_EQ(t.i, 1u);
  EXPECT_EQ(t.j, 1u);
  // With i = j = 1 the only constraint on K is the A|B staging budget, and
  // the greedy growth runs it to the edge.
  EXPECT_EQ(t.k, std::min(b.max_a_blocks, b.max_b_blocks));
  EXPECT_NO_THROW(validate_tiles(cfg, t));
}

TEST(ExhaustiveTiling, NeverWorseThanHeuristicOnGemv) {
  // The search policy's feasible set contains the heuristic's tile, so on
  // the decode-shaped matmuls its modeled traffic can only be <=.
  const GemminiConfig cfg = GemminiConfig::paper_default();
  const lowering::HeuristicTiling heuristic;
  const lowering::ExhaustiveTiling exhaustive;
  for (const MatmulDims dims :
       {MatmulDims{1, 256, 256}, MatmulDims{1, 1024, 4096},
        MatmulDims{1, 4096, 1024}, MatmulDims{8, 256, 1024},
        MatmulDims{1, 10'000'000, 16}}) {
    const TileShape th = heuristic.choose(cfg, 0, dims);
    const TileShape te = exhaustive.choose(cfg, 0, dims);
    EXPECT_LE(modeled_dma_bytes(cfg, dims, te, false),
              modeled_dma_bytes(cfg, dims, th, false))
        << dims.m << "x" << dims.k << "x" << dims.n;
    EXPECT_NO_THROW(validate_tiles(cfg, te));
  }
}

TEST(ModeledDmaBytes, CountsPassesExactly) {
  const GemminiConfig cfg = GemminiConfig::paper_default();  // dim 16
  // 4x2x4 blocks, tile 2x1x2: A reloaded ceil(4/2)=2 times, B ceil(4/2)=2.
  const MatmulDims dims{64, 32, 64};
  const TileShape tile{2, 1, 2};
  const std::uint64_t a = 64ull * 32 * 2, b = 32ull * 64 * 2, c = 64ull * 64;
  EXPECT_EQ(modeled_dma_bytes(cfg, dims, tile, false), a + b + c);
  EXPECT_EQ(modeled_dma_bytes(cfg, dims, tile, true), a + b + 2 * c);
  // Growing the output tile to cover the problem removes all reloads.
  const TileShape full{4, 2, 4};
  EXPECT_EQ(modeled_dma_bytes(cfg, dims, full, false),
            64ull * 32 + 32ull * 64 + 64ull * 64);
}

}  // namespace
}  // namespace gemmini
