#pragma once
// Runtime data staging / tile-size selection (paper §III-B).
//
// "At runtime, based on the dimensions of a layer's inputs, and the hardware
// parameters of the accelerator instantiation, Gemmini uses heuristics to
// maximize the amount of data moved into the scratchpad per iteration."
//
// Tiles are measured in DIM x DIM blocks. The A and B operands each get half
// of the scratchpad and are double-buffered (so the DMA can fill the next
// tile while the array consumes the current one); the C tile is double-
// buffered in the accumulator. The heuristic greedily grows the tile's
// I/K/J extents, round-robin, until a constraint binds — which maximizes
// staged data while keeping the tile roughly square (good reuse).

#include <cstdint>
#include <optional>

#include "src/arch/config.h"

namespace gemmini {

struct MatmulDims {
  std::uint64_t m = 0;  ///< rows of A and C
  std::uint64_t k = 0;  ///< cols of A == rows of B
  std::uint64_t n = 0;  ///< cols of B and C

  friend bool operator==(const MatmulDims&, const MatmulDims&) = default;
};

/// Tile extents in DIM-blocks.
struct TileShape {
  unsigned i = 1;  ///< M direction
  unsigned k = 1;  ///< K direction
  unsigned j = 1;  ///< N direction

  friend bool operator==(const TileShape&, const TileShape&) = default;
};

/// Scratchpad/accumulator budget (in DIM-blocks) for the standard staging
/// scheme described above.
struct TileBudget {
  std::uint64_t max_a_blocks;  ///< i*k must not exceed
  std::uint64_t max_b_blocks;  ///< k*j must not exceed
  std::uint64_t max_c_blocks;  ///< i*j must not exceed
};

TileBudget tile_budget(const GemminiConfig& cfg);

/// The paper's heuristic. Never returns a tile that violates the budget;
/// GEMMINI_CHECKs that at least a 1x1x1 tile fits.
TileShape choose_tiles(const GemminiConfig& cfg, const MatmulDims& dims);

/// Validates a manually chosen tile against the budget ("the low-level API
/// also allows them to manually set tile-sizes for each kernel"). Throws
/// RuntimeError if it does not fit.
void validate_tiles(const GemminiConfig& cfg, const TileShape& tile);

/// Modeled DRAM traffic, in bytes, for one tiled matmul staged with `tile`,
/// mirroring emit_tiled_matmul's staging loops exactly: the whole A matrix
/// is reloaded once per J tile pass, the whole B matrix once per I tile
/// pass, the bias row is broadcast across every output element, and C is
/// drained once. This is the objective the search-based tiling policy
/// minimizes (tile selection under the scratchpad/accumulator budget is a
/// multi-dimensional knapsack; the traffic model is its value function).
/// With `b_int4`, B is stored as packed nibbles and each B row moves
/// ceil(n/2) bytes instead of n*elem.
std::uint64_t modeled_dma_bytes(const GemminiConfig& cfg,
                                const MatmulDims& dims, const TileShape& tile,
                                bool has_bias = false, bool b_int4 = false);

}  // namespace gemmini
