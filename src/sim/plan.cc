#include "src/sim/plan.h"

#include "src/base/status.h"
#include "src/sim/json_writer.h"

namespace gemmini::sim {

namespace {

void write_buffer(detail::JsonWriter& w, const char* key,
                  const PlannedBuffer& b) {
  w.key(key);
  w.begin_object();
  w.key("va");
  w.value(b.va);
  w.key("bytes");
  w.value(b.bytes);
  w.end_object();
}

void write_layer(detail::JsonWriter& w, const PlannedLayer& l) {
  w.begin_object();
  w.key("index");
  w.value(static_cast<std::uint64_t>(l.index));
  w.key("kind");
  w.value(l.kind);
  w.key("tag");
  w.value(l.tag);
  w.key("target");
  w.value(lowering::layer_target_name(l.target));
  if (l.has_matmul) {
    w.key("matmul");
    w.begin_object();
    w.key("m");
    w.value(l.matmul.dims.m);
    w.key("k");
    w.value(l.matmul.dims.k);
    w.key("n");
    w.value(l.matmul.dims.n);
    w.key("count");
    w.value(l.matmul.count);
    w.key("tile");
    w.begin_object();
    w.key("i");
    w.value(l.matmul.tile.i);
    w.key("k");
    w.value(l.matmul.tile.k);
    w.key("j");
    w.value(l.matmul.tile.j);
    w.end_object();
    w.end_object();
    w.key("out_shift");
    w.value(l.out_shift);
  }
  w.key("dma_bytes");
  w.value(l.dma_bytes);
  w.key("buffers");
  w.begin_object();
  write_buffer(w, "output", l.output);
  if (l.weights.va) write_buffer(w, "weights", l.weights);
  if (l.bias.va) write_buffer(w, "bias", l.bias);
  if (l.scratch.va) write_buffer(w, "scratch", l.scratch);
  w.end_object();
  w.end_object();
}

}  // namespace

std::uint64_t Plan::modeled_dma_bytes() const {
  std::uint64_t total = 0;
  for (const PlannedLayer& l : layers) total += l.dma_bytes;
  return total;
}

void Plan::set_tile(std::size_t layer, TileShape tile,
                    const GemminiConfig& cfg) {
  GEMMINI_CHECK_MSG(layer < layers.size(), "set_tile: no such layer");
  PlannedLayer& l = layers[layer];
  GEMMINI_CHECK_MSG(l.has_matmul,
                    "set_tile: layer " << layer << " (" << l.kind
                                       << ") does not lower to a matmul");
  GEMMINI_CHECK_MSG(l.target == lowering::LayerTarget::kAccel,
                    "set_tile: layer " << layer
                                       << " is not accelerator-placed");
  l.matmul.tile = tile;
  l.dma_bytes = l.matmul.count *
                gemmini::modeled_dma_bytes(cfg, l.matmul.dims, tile,
                                           l.bias.va != 0);
  tiling_policy = "manual-edit";
}

std::string Plan::to_json(int indent) const {
  detail::JsonWriter w(indent);
  w.begin_object();
  w.key("model");
  w.value(model_.name());
  w.key("config");
  w.value(config);
  w.key("placement_policy");
  w.value(placement_policy);
  w.key("tiling_policy");
  w.value(tiling_policy);
  w.key("functional");
  w.value(functional);
  w.key("seed");
  w.value(seed);
  w.key("core");
  w.value(core);
  w.key("input");
  w.begin_object();
  w.key("va");
  w.value(input);
  w.key("bytes");
  w.value(input_bytes);
  w.end_object();
  w.key("weight_bytes");
  w.value(weight_bytes);
  w.key("modeled_dma_bytes");
  w.value(modeled_dma_bytes());
  w.key("layers");
  w.begin_array();
  for (const PlannedLayer& l : layers) write_layer(w, l);
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace gemmini::sim
