#pragma once
// Per-instantiation C header generation (paper §III-B: "every time a new
// accelerator is produced, Gemmini also generates an accompanying header
// file containing various parameters, e.g. the dimensions of the spatial
// array, the dataflows supported, and the compute blocks that are
// included"). This mirrors the real generator's gemmini_params.h.

#include <string>

#include "src/arch/config.h"

namespace gemmini {

/// Renders the gemmini_params.h-style header for a configuration.
std::string generate_params_header(const GemminiConfig& cfg);

/// Writes it to a file; throws RuntimeError on I/O failure.
void write_params_header(const GemminiConfig& cfg, const std::string& path);

}  // namespace gemmini
