#pragma once
// Chrome / Perfetto exporter for the trace subsystem.
//
// Renders a recorded event stream as the Chrome Trace Event JSON format,
// which both chrome://tracing and https://ui.perfetto.dev open directly:
// one process per core (plus a "substrate" process for events recorded
// outside any core's context), one thread track per hardware unit, complete
// ("X") events for spans and instant ("i") events for zero-length records.
// Timestamps are simulated cycles (at the paper's 1 GHz, 1 cycle == 1 ns,
// so the viewer's nanosecond ruler reads directly in cycles).
//
// The writer is built on the sim layer's deterministic JsonWriter: equal
// event streams always serialize byte-identically, which is what lets tests
// compare trace.json across repeated sessions and sweep worker threads.

#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace gemmini::trace {

/// A sampled metric timeline rendered as a Perfetto counter track ("C"
/// events under the synthetic "metrics" process, pid 998): value[i] is
/// plotted at ts = i * interval. The metrics subsystem's TimeSeriesSampler
/// produces these; sim::Session wires them in automatically.
struct CounterTrack {
  std::string name;            ///< metric name, e.g. "dram.ch0.row_hits"
  Cycle interval = 0;          ///< window width in cycles
  std::vector<double> values;  ///< one sample per window
};

/// One serving request's lifecycle, rendered as its own thread track under
/// the synthetic "requests" process (pid 997): a "queue" span from arrival
/// to dispatch and a "run" span from dispatch to completion (deadline
/// misses flagged in args); shed requests render as an instant.
struct RequestTrackSpan {
  std::uint64_t id = 0;
  std::string cls;  ///< request-class name
  Cycle arrival = 0;
  Cycle dispatch = 0;
  Cycle complete = 0;
  unsigned core = 0;
  unsigned preemptions = 0;
  bool shed = false;
  bool deadline_miss = false;
};

/// Options for the exporter; `label` becomes the trace-level metadata so a
/// directory of artifacts stays tellable-apart. The `counters` and
/// `requests` tracks are optional extras — when both are empty the output
/// is byte-identical to what this exporter has always produced.
struct PerfettoOptions {
  std::string label;   ///< e.g. "<config>/<model>"
  int indent = 0;      ///< 0 = compact single-line JSON
  std::vector<CounterTrack> counters;
  std::vector<RequestTrackSpan> requests;
};

/// Serializes `events` (record order) as a Perfetto-loadable trace.json.
std::string to_perfetto_json(const std::vector<TraceEvent>& events,
                             const PerfettoOptions& opts = {});

/// Writes to_perfetto_json to `path`; returns false on I/O failure.
bool write_perfetto_file(const std::string& path,
                         const std::vector<TraceEvent>& events,
                         const PerfettoOptions& opts = {});

}  // namespace gemmini::trace
