// Seeded fault-injection campaign over the reliability axis (src/fault/):
// rerun one workload N times per fault configuration, flipping DRAM bits at
// a fixed per-burst rate, and classify every run against the fault-free
// golden output as masked / corrected / detected / SDC.
//
// Three columns share one model and one SoC:
//   * base        — fault layer disabled; the golden reference column.
//   * ecc-on      — single-bit flips with SECDED ECC: every flip must be
//                   corrected (zero silent data corruption), at the cost of
//                   the correction latency charged to the read path.
//   * ecc-off     — the same flip rate with ECC off: flips land silently and
//                   some runs show up as SDC, which is the point — it shows
//                   what the ECC column is buying.
//
// The second half poisons one point of a sweep with an impossible watchdog
// budget to demonstrate fail-soft isolation: the poisoned point reports
// status "error" while its neighbours complete normally.
//
//   $ ./example_fault_campaign

#include <cstdio>

#include "src/core/gemmini.h"

using namespace gemmini;

int main() {
  const Model workload = zoo::squeezenet_v11(48);

  fault::FaultConfig baseline;  // disabled: the fault-free reference column
  baseline.name = "base";

  fault::FaultConfig ecc_on;
  ecc_on.enabled = true;
  ecc_on.name = "ecc-on";
  ecc_on.seed = 42;
  ecc_on.dram_read_flip_rate = 0.02;
  ecc_on.dram_flip_bits = 1;
  ecc_on.ecc.enabled = true;

  // Single-bit flips at a low rate are mostly masked even without ECC (they
  // land in bursts whose bits never reach the output); make the unprotected
  // column noisier so the silent-corruption outcome actually shows up.
  fault::FaultConfig ecc_off = ecc_on;
  ecc_off.name = "ecc-off";
  ecc_off.ecc.enabled = false;
  ecc_off.dram_read_flip_rate = 0.2;
  ecc_off.dram_flip_bits = 4;

  // `fault::FaultConfig{}` (disabled) is the fault-free baseline column; the
  // campaign reruns only the armed columns. Campaigns need functional
  // single-core points so the output can be diffed against the golden run.
  SocConfig base;
  base.accel.has_im2col = true;
  const auto reports =
      sim::Experiment(base)
          .model(workload)
          .functional()
          .fault_configs({baseline, ecc_on, ecc_off})
          .fault_campaign(8)
          .run({.threads = 2});

  std::printf("%-28s %-10s %-7s %-7s %-9s %-9s %-5s %-9s\n", "column",
              "cycles", "flips", "masked", "corrected", "detected", "sdc",
              "sdc_rate");
  for (const sim::Report& r : reports) {
    const sim::ReliabilityReport& rel = r.reliability;
    std::printf("%-28s %-10lu %-7lu %-7u %-9u %-9u %-5u %-9.3f\n",
                r.point.c_str(), static_cast<unsigned long>(r.cycles),
                static_cast<unsigned long>(rel.injection.dram_read_flips),
                rel.masked, rel.corrected, rel.detected, rel.sdc,
                rel.sdc_rate);
  }

  std::printf("\nFail-soft sweep (middle point poisoned with a 1000-cycle "
              "watchdog):\n");
  sim::Sweep sweep;
  SocConfig ok_cfg;
  ok_cfg.accel.has_im2col = true;
  SocConfig poisoned = ok_cfg;
  poisoned.max_cycles = 1000;  // far below what the workload needs
  sweep.add("healthy-a", ok_cfg, workload);
  sweep.add("poisoned", poisoned, workload);
  sweep.add("healthy-b", ok_cfg, workload);
  for (const sim::Report& r : sweep.run({.threads = 3})) {
    if (r.status == "ok") {
      std::printf("  %-10s ok     %lu cycles\n", r.point.c_str(),
                  static_cast<unsigned long>(r.cycles));
    } else {
      std::printf("  %-10s error  %s\n", r.point.c_str(), r.error.c_str());
    }
  }
  return 0;
}
