#pragma once
// Model lowering: maps a graph-IR model onto one core's accelerator +
// host CPU, producing a WorkStream. This is the "push-button" layer of the
// software stack: it allocates every buffer in the process address space,
// picks per-layer quantization shifts, decides accelerator-vs-CPU placement
// per layer kind, and (in functional mode) initializes weights and wires up
// the data-materialization hooks.
//
// CPU-baseline estimation (the Fig. 7 denominator) lives here too, since it
// consumes the same per-layer op counts.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/arch/config.h"
#include "src/base/rng.h"
#include "src/cpu/cost_model.h"
#include "src/model/graph.h"
#include "src/runtime/workstream.h"
#include "src/vm/page_table.h"

namespace gemmini {

struct LoweringOptions {
  /// Initialize weights/input with deterministic random data and attach the
  /// functional materialization hooks (tests/examples). Timing-only sweeps
  /// leave this off: buffers are mapped but never written.
  bool functional = false;
  std::uint64_t seed = 1;
};

struct LoweredModel {
  WorkStream stream;
  /// Layer index -> output buffer VA (padded to whole DIM rows).
  std::vector<VAddr> layer_output;
  std::vector<std::uint64_t> layer_bytes;
  VAddr input = 0;
  std::uint64_t input_bytes = 0;
  std::uint64_t weight_bytes = 0;
};

/// Lowers `model` for the given accelerator instantiation into `as`. This is
/// the single lowering entry point; `sim::Session` calls it on behalf of the
/// push-button flow.
LoweredModel lower_model(const Model& model, const GemminiConfig& cfg,
                         const CpuCostModel& cpu, AddressSpace& as,
                         const LoweringOptions& opts = {});

/// Deprecated dual-AddressSpace overload, kept for source compatibility with
/// callers of the old const/mutable signature. The const reference was never
/// used; both references must name the same address space.
[[deprecated("use the single-AddressSpace lower_model")]]
inline LoweredModel lower_model(const Model& model, const GemminiConfig& cfg,
                                const CpuCostModel& cpu,
                                const AddressSpace& /*as_const*/,
                                AddressSpace& as,
                                const LoweringOptions& opts = {}) {
  return lower_model(model, cfg, cpu, as, opts);
}

/// Cycles for running the whole model in software on `cpu` (no accelerator):
/// the Fig. 7 baseline.
Cycle cpu_baseline_cycles(const Model& model, const CpuCostModel& cpu);

/// Per-layer quantization shift heuristic: keeps int8 outputs in range for
/// K-deep random-data accumulations.
unsigned default_out_shift(std::uint64_t k_depth);

}  // namespace gemmini
