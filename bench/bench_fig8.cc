// Fig. 8: virtual-address-translation design space for ResNet-50 on the
// low-power edge SoC (16x16 mesh, 256 KB scratchpad, one shared PTW):
// normalized performance across private-TLB sizes x shared-L2-TLB sizes,
// (a) without and (b) with the TLB filter registers.
//
// Paper findings to reproduce:
//  * private TLB 4 -> 16 entries improves end-to-end performance up to 11%;
//  * even a 512-entry shared L2 TLB never buys more than ~8%;
//  * private hit rate stays >= 84% even at the smallest sizes;
//  * with filter registers, a 4-entry private TLB and NO shared TLB is
//    within ~2% of the best recorded configuration, with >= 90% effective
//    hit rate.
//
// GEMMINI_BENCH_FAST=1 shrinks the input for smoke runs.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/core/gemmini.h"

using namespace gemmini;

int main() {
  std::printf("=== Fig. 8: TLB sizing for ResNet-50 (edge SoC) ===\n\n");
  const bool fast = std::getenv("GEMMINI_BENCH_FAST") != nullptr;
  const Model model = zoo::resnet50(fast ? 96 : 224);

  struct Point {
    bool filters;
    unsigned priv, shared;
    Cycle cycles;
    double hit;
  };
  std::vector<Point> points;
  Cycle best = kCycleMax;

  const std::vector<unsigned> priv_sizes = {4, 16, 64};
  const std::vector<unsigned> shared_sizes = {0, 512};
  for (const bool filters : {false, true}) {
    for (const unsigned priv : priv_sizes) {
      for (const unsigned shared : shared_sizes) {
        SocConfig cfg = SocConfig::base_1mb_l2();
        cfg.accel.has_im2col = true;
        cfg.accel.translation.private_tlb.entries = priv;
        cfg.accel.translation.l2_tlb_present = shared > 0;
        if (shared > 0) cfg.accel.translation.l2_tlb.entries = shared;
        cfg.accel.translation.filter_registers = filters;
        sim::Session session = sim::Session::builder(cfg).build();
        const sim::Report r = session.run(model);
        const auto& ts = session.soc().accelerator(0).translation();
        points.push_back({filters, priv, shared, r.cycles,
                          ts.effective_private_hit_rate()});
        if (r.cycles < best) best = r.cycles;
      }
    }
  }

  for (const bool filters : {false, true}) {
    std::printf("(%c) %s filter registers\n", filters ? 'b' : 'a',
                filters ? "WITH" : "WITHOUT");
    std::printf("  %-10s %-10s %-14s %-12s %-10s\n", "private", "L2-TLB",
                "cycles", "normalized", "hit-rate");
    for (const auto& p : points) {
      if (p.filters != filters) continue;
      std::printf("  %-10u %-10u %-14lu %-12.3f %-9.1f%%\n", p.priv, p.shared,
                  static_cast<unsigned long>(p.cycles),
                  static_cast<double>(best) / static_cast<double>(p.cycles),
                  100.0 * p.hit);
    }
    std::printf("\n");
  }

  // Headline claims.
  auto find = [&](bool f, unsigned pr, unsigned sh) -> const Point& {
    for (const auto& p : points) {
      if (p.filters == f && p.priv == pr && p.shared == sh) return p;
    }
    std::abort();
  };
  const double gain_4_to_16 =
      static_cast<double>(find(false, 4, 0).cycles) /
          static_cast<double>(find(false, 16, 0).cycles) -
      1.0;
  const double l2tlb_gain =
      static_cast<double>(find(false, 4, 0).cycles) /
          static_cast<double>(find(false, 4, 512).cycles) -
      1.0;
  const Point& cheap = find(true, 4, 0);
  const double cheap_loss =
      static_cast<double>(cheap.cycles) / static_cast<double>(best) - 1.0;
  std::printf("private 4 -> 16 entries (no filters): +%.1f%%  (paper: up to +11%%)\n",
              100.0 * gain_4_to_16);
  std::printf("adding 512-entry L2 TLB to 4-entry private: +%.1f%%  (paper: <= +8%%)\n",
              100.0 * l2tlb_gain);
  std::printf("4-entry private + filters, no L2 TLB: %.1f%% from best, "
              "effective hit rate %.1f%%  (paper: ~2%% from max, 90%%)\n",
              100.0 * cheap_loss, 100.0 * cheap.hit);
  return 0;
}
