#pragma once
// Minimal row-major tensor used by the software stack and the reference
// kernels. Shapes are small (<=4 dims); storage is owned and contiguous.

#include <array>
#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <vector>

#include "src/base/rng.h"
#include "src/base/status.h"

namespace gemmini {

template <typename T>
class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::vector<std::size_t> shape)
      : shape_(std::move(shape)) {
    std::size_t n = 1;
    for (std::size_t d : shape_) n *= d;
    data_.assign(n, T{});
  }

  Tensor(std::initializer_list<std::size_t> shape)
      : Tensor(std::vector<std::size_t>(shape)) {}

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const { return shape_.at(i); }
  std::size_t size() const { return data_.size(); }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  // 2-D access (matrices are the lingua franca of the runtime). Offsets are
  // computed once per call; the rank/bounds checks compile out under NDEBUG
  // so the accessors inline to a single multiply-add in release builds.
  T& at(std::size_t r, std::size_t c) {
    GEMMINI_DCHECK(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }
  const T& at(std::size_t r, std::size_t c) const {
    GEMMINI_DCHECK(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }

  // 3-D access (e.g. depthwise weights [KH, KW, C]).
  T& at(std::size_t a, std::size_t b, std::size_t c) {
    GEMMINI_DCHECK(rank() == 3 && a < shape_[0] && b < shape_[1] &&
                   c < shape_[2]);
    const std::size_t off = (a * shape_[1] + b) * shape_[2] + c;
    return data_[off];
  }
  const T& at(std::size_t a, std::size_t b, std::size_t c) const {
    GEMMINI_DCHECK(rank() == 3 && a < shape_[0] && b < shape_[1] &&
                   c < shape_[2]);
    const std::size_t off = (a * shape_[1] + b) * shape_[2] + c;
    return data_[off];
  }

  // 4-D NHWC access, the layout used by the convolution kernels.
  T& at(std::size_t n, std::size_t h, std::size_t w, std::size_t c) {
    GEMMINI_DCHECK(rank() == 4 && n < shape_[0] && h < shape_[1] &&
                   w < shape_[2] && c < shape_[3]);
    const std::size_t off =
        ((n * shape_[1] + h) * shape_[2] + w) * shape_[3] + c;
    return data_[off];
  }
  const T& at(std::size_t n, std::size_t h, std::size_t w,
              std::size_t c) const {
    GEMMINI_DCHECK(rank() == 4 && n < shape_[0] && h < shape_[1] &&
                   w < shape_[2] && c < shape_[3]);
    const std::size_t off =
        ((n * shape_[1] + h) * shape_[2] + w) * shape_[3] + c;
    return data_[off];
  }

  /// Raw pointer to row `r` of a rank-2 tensor — the accessor the blocked
  /// kernels stream through instead of per-element at().
  T* row(std::size_t r) {
    GEMMINI_DCHECK(rank() == 2 && r < shape_[0]);
    return data_.data() + r * shape_[1];
  }
  const T* row(std::size_t r) const {
    GEMMINI_DCHECK(rank() == 2 && r < shape_[0]);
    return data_.data() + r * shape_[1];
  }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// Deterministic random fill for tests and examples.
  void randomize(Rng& rng) {
    for (auto& v : data_) {
      if constexpr (std::is_same_v<T, float>) {
        v = rng.next_float_pm1();
      } else if constexpr (std::is_same_v<T, std::int8_t>) {
        v = rng.next_int8();
      } else {
        v = static_cast<T>(rng.next_range(-64, 63));
      }
    }
  }

  friend bool operator==(const Tensor& a, const Tensor& b) {
    return a.shape_ == b.shape_ && a.data_ == b.data_;
  }

 private:
  std::vector<std::size_t> shape_;
  std::vector<T> data_;
};

using TensorI8 = Tensor<std::int8_t>;
using TensorI32 = Tensor<std::int32_t>;
using TensorF32 = Tensor<float>;

}  // namespace gemmini
