// Facade tests (formerly against the deleted Generator shim, now directly
// on sim::Session): elaboration, run reports, multicore, estimates, and
// config validation across the template's design space.

#include <gtest/gtest.h>

#include "src/dnn/zoo.h"
#include "src/sim/session.h"

namespace gemmini {
namespace {

sim::Session make_session(const SocConfig& cfg) {
  return sim::Session::builder(cfg).build();
}

TEST(SessionFacade, RunReportIsConsistent) {
  SocConfig cfg;
  cfg.accel.has_im2col = true;
  sim::Session session = make_session(cfg);
  const sim::Report r = session.run(zoo::squeezenet_v11(64));
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.fps, 0.0);
  EXPECT_NEAR(r.seconds, static_cast<double>(r.cycles) / 1e9, 1e-12);
  EXPECT_GT(r.speedup, 10.0);  // the accelerator must beat a scalar CPU
  EXPECT_GT(r.array_utilization, 0.0);
  EXPECT_LT(r.array_utilization, 1.0);
  ASSERT_EQ(r.per_core.size(), 1u);
  EXPECT_GT(r.per_core[0].accel.macs, 0u);
}

TEST(SessionFacade, RunsAreDeterministicAcrossSessions) {
  SocConfig cfg;
  const Model m = zoo::squeezenet_v11(64);
  sim::Session s1 = make_session(cfg), s2 = make_session(cfg);
  EXPECT_EQ(s1.run(m).cycles, s2.run(m).cycles);
}

TEST(SessionFacade, RepeatRunsNearlyIdentical) {
  // Re-running on the same session re-lowers at fresh virtual addresses,
  // which shifts DRAM bank alignment slightly; cycles must agree to <1%.
  SocConfig cfg;
  sim::Session session = make_session(cfg);
  const Model m = zoo::squeezenet_v11(64);
  const double c1 = static_cast<double>(session.run(m).cycles);
  const double c2 = static_cast<double>(session.run(m).cycles);
  EXPECT_NEAR(c2 / c1, 1.0, 0.01);
}

TEST(SessionFacade, MulticoreReturnsPerCoreReports) {
  SocConfig cfg;
  cfg.cores = 2;
  sim::Session session = make_session(cfg);
  const sim::Report r = session.run_multicore(zoo::squeezenet_v11(64));
  ASSERT_EQ(r.per_core.size(), 2u);
  EXPECT_GT(r.per_core[0].cycles, 0u);
  EXPECT_GT(r.per_core[1].cycles, 0u);
}

TEST(SessionFacade, MulticoreContentionSlowsCores) {
  const Model m = zoo::squeezenet_v11(64);
  SocConfig one;
  sim::Session s1 = make_session(one);
  const Cycle solo = s1.run(m).cycles;
  SocConfig two = one;
  two.cores = 2;
  sim::Session s2 = make_session(two);
  const sim::Report r = s2.run_multicore(m);
  for (const auto& core : r.per_core) EXPECT_GT(core.cycles, solo);
}

TEST(SessionFacade, EstimatesExposed) {
  SocConfig cfg;
  sim::Session session = make_session(cfg);
  const sim::Estimates est = session.estimates();
  EXPECT_GT(est.area.total_um2, 900000.0);
  EXPECT_NEAR(est.fmax_ghz, 1.89, 0.02);
  EXPECT_GT(est.power_mw, 1.0);
  EXPECT_NE(session.params_header().find("#define DIM 16"),
            std::string::npos);
}

TEST(SessionFacade, BiggerArrayFasterOnBigGemms) {
  const Model bert = zoo::bert_base(64, 1);
  SocConfig small;
  small.accel.array = SpatialArrayGeometry{8, 8, 1, 1};
  small.accel.has_im2col = true;
  SocConfig big;
  big.accel.array = SpatialArrayGeometry{32, 32, 1, 1};
  big.accel.has_im2col = true;
  sim::Session gs = make_session(small), gb = make_session(big);
  EXPECT_GT(gs.run(bert).cycles, gb.run(bert).cycles);
}

TEST(ConfigValidation, RejectsBrokenTemplates) {
  GemminiConfig cfg = GemminiConfig::paper_default();
  cfg.array.mesh_cols = 8;  // non-square 16x8
  EXPECT_THROW(cfg.validate(), ConfigError);

  GemminiConfig cfg2 = GemminiConfig::paper_default();
  cfg2.sp_capacity_bytes = 100;  // absurdly small
  EXPECT_THROW(cfg2.validate(), ConfigError);

  GemminiConfig cfg3 = GemminiConfig::paper_default();
  cfg3.acc_capacity_bytes = 0;
  EXPECT_THROW(cfg3.validate(), ConfigError);

  GemminiConfig cfg4 = GemminiConfig::paper_default();
  cfg4.rob_entries = 0;
  EXPECT_THROW(cfg4.validate(), ConfigError);
}

TEST(ConfigValidation, PresetsAreValid) {
  EXPECT_NO_THROW(GemminiConfig::paper_default().validate());
  EXPECT_NO_THROW(GemminiConfig::systolic_16x16().validate());
  EXPECT_NO_THROW(GemminiConfig::vector_16x16().validate());
  EXPECT_NO_THROW(GemminiConfig::edge().validate());
  EXPECT_NO_THROW(GemminiConfig::big_sp().validate());
}

TEST(ConfigValidation, VectorPresetGeometry) {
  const GemminiConfig v = GemminiConfig::vector_16x16();
  EXPECT_EQ(v.array.num_pes(), 256u);
  EXPECT_EQ(v.array.chain_length(), 16u);
  EXPECT_EQ(v.array.num_tiles(), 16u);
  EXPECT_EQ(v.dim(), 16u);
}

TEST(ConfigValidation, DerivedGeometry) {
  const GemminiConfig cfg = GemminiConfig::paper_default();
  EXPECT_EQ(cfg.sp_rows(), 16384u);        // 256 KB / 16 B rows
  EXPECT_EQ(cfg.sp_bank_rows(), 4096u);    // 4 banks
  EXPECT_EQ(cfg.acc_rows(), 1024u);        // 64 KB / 64 B rows
  EXPECT_EQ(cfg.sp_row_bytes(), 16u);
  EXPECT_EQ(cfg.acc_row_bytes(), 64u);
}

}  // namespace
}  // namespace gemmini
