// Memory substrate tests: physical memory, cache replacement/writeback,
// DRAM row buffers, bus arbitration, and the composed memory system.

#include <gtest/gtest.h>

#include "src/mem/bus.h"
#include "src/mem/cache.h"
#include "src/mem/dram.h"
#include "src/mem/memsys.h"
#include "src/mem/phys_mem.h"
#include "src/soc/soc.h"

namespace gemmini {
namespace {

TEST(PhysMem, ReadWriteRoundTrip) {
  PhysMem m;
  const std::uint32_t v = 0xdeadbeef;
  m.write_scalar(0x1000, v);
  EXPECT_EQ(m.read_scalar<std::uint32_t>(0x1000), v);
}

TEST(PhysMem, UntouchedReadsZero) {
  PhysMem m;
  EXPECT_EQ(m.read_scalar<std::uint64_t>(0x555000), 0u);
  EXPECT_EQ(m.resident_pages(), 0u);
}

TEST(PhysMem, CrossPageWrite) {
  PhysMem m;
  std::uint8_t buf[8192];
  for (std::size_t i = 0; i < sizeof(buf); ++i) buf[i] = i & 0xff;
  m.write(kPageBytes - 100, buf, sizeof(buf));
  std::uint8_t out[8192];
  m.read(kPageBytes - 100, out, sizeof(out));
  EXPECT_EQ(0, std::memcmp(buf, out, sizeof(buf)));
  EXPECT_EQ(m.resident_pages(), 3u);
}

TEST(FrameAllocator, AllocatesDistinctAlignedFrames) {
  FrameAllocator fa(0x8000'0000ull);
  const PAddr a = fa.alloc_frame();
  const PAddr b = fa.alloc_frame();
  EXPECT_NE(a, b);
  EXPECT_EQ(page_offset(a), 0u);
  EXPECT_EQ(b - a, kPageBytes);
}

TEST(Cache, HitAfterMiss) {
  Cache c(CacheConfig{.size_bytes = 4096, .ways = 2, .line_bytes = 64});
  EXPECT_FALSE(c.access_line(0x100, false, {0}).hit);
  EXPECT_TRUE(c.access_line(0x100, false, {0}).hit);
  EXPECT_TRUE(c.access_line(0x13f, false, {0}).hit);   // same line
  EXPECT_FALSE(c.access_line(0x140, false, {0}).hit);  // next line
}

TEST(Cache, LruEviction) {
  // 2-way, line 64, size 128 => 1 set.
  Cache c(CacheConfig{.size_bytes = 128, .ways = 2, .line_bytes = 64});
  c.access_line(0 * 64, false, {0});   // A
  c.access_line(1 * 64, false, {0});   // B
  c.access_line(0 * 64, false, {0});   // touch A (B is now LRU)
  c.access_line(2 * 64, false, {0});   // C evicts B
  EXPECT_TRUE(c.probe(0 * 64));
  EXPECT_FALSE(c.probe(1 * 64));
  EXPECT_TRUE(c.probe(2 * 64));
}

TEST(Cache, DirtyEvictionReportsWriteback) {
  Cache c(CacheConfig{.size_bytes = 128, .ways = 2, .line_bytes = 64});
  c.access_line(0, true, {0});  // dirty A
  c.access_line(64, false, {0});
  const CacheAccess r = c.access_line(128, false, {0});  // evicts dirty A
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.victim_line, 0u);
}

TEST(Cache, WritebackVictimAddressReconstruction) {
  CacheConfig cfg{.size_bytes = 1 << 14, .ways = 4, .line_bytes = 64};
  Cache c(cfg);
  const PAddr victim = 0x4'2940;  // arbitrary line-aligned address
  c.access_line(victim, true, {0});
  // Fill the same set with conflicting lines to force the eviction.
  const std::uint64_t set_stride = 64ull * cfg.num_sets();
  CacheAccess last;
  for (unsigned i = 1; i <= cfg.ways; ++i) {
    last = c.access_line(victim + i * set_stride, false, {0});
  }
  EXPECT_TRUE(last.writeback);
  EXPECT_EQ(last.victim_line, victim & ~63ull);
}

TEST(Cache, MissRateTracksAccesses) {
  Cache c(CacheConfig{.size_bytes = 4096, .ways = 4, .line_bytes = 64});
  for (int i = 0; i < 32; ++i) c.access_line(i * 64, false, {0});
  EXPECT_DOUBLE_EQ(c.miss_rate(), 1.0);
  for (int i = 0; i < 32; ++i) c.access_line(i * 64, false, {0});
  EXPECT_DOUBLE_EQ(c.miss_rate(), 0.5);
}

TEST(Cache, FlushInvalidatesEverything) {
  Cache c(CacheConfig{.size_bytes = 4096, .ways = 4, .line_bytes = 64});
  c.access_line(0, true, {0});
  c.flush();
  EXPECT_FALSE(c.probe(0));
}

TEST(Cache, ConfigValidation) {
  CacheConfig bad;
  bad.line_bytes = 48;  // not a power of two
  EXPECT_THROW(bad.validate(), ConfigError);
  CacheConfig bad2;
  bad2.ways = 0;
  EXPECT_THROW(bad2.validate(), ConfigError);
}

TEST(Bus, SerializesOverlappingTransfers) {
  Bus bus(BusConfig{.width_bytes = 16});
  const Cycle t1 = bus.transfer(0, 64, {0});  // 4 cycles: done at 4
  EXPECT_EQ(t1, 4u);
  const Cycle t2 = bus.transfer(0, 64, {1});  // waits for the bus
  EXPECT_EQ(t2, 8u);
  const Cycle t3 = bus.transfer(100, 16, {0});  // idle bus
  EXPECT_EQ(t3, 101u);
}

TEST(Bus, UtilizationAccounting) {
  Bus bus(BusConfig{.width_bytes = 16});
  bus.transfer(0, 160, {0});  // 10 busy cycles
  EXPECT_DOUBLE_EQ(bus.utilization(100), 0.1);
}

TEST(Dram, RowHitFasterThanMiss) {
  DramConfig cfg;
  Dram d(cfg);
  const Cycle first = d.access(0, 64, 0, {0});
  const Cycle second = d.access(64, 64, first, {0}) - first;
  EXPECT_GT(first, second);  // second access hits the open row
  EXPECT_EQ(d.stats().value("row_hits"), 1u);
  EXPECT_EQ(d.stats().value("row_misses"), 1u);
}

TEST(Dram, BankHashSpreadsLargeStrides) {
  DramConfig cfg;
  Dram d(cfg);
  // Streams 1 MB apart must not all collide in one bank (the XOR hash).
  const unsigned b0 = d.bank_of(0);
  const unsigned b1 = d.bank_of(1 << 20);
  const unsigned b2 = d.bank_of(2 << 20);
  EXPECT_FALSE(b0 == b1 && b1 == b2);
}

TEST(Dram, SameBankRowConflictSerializes) {
  DramConfig cfg;
  Dram d(cfg);
  // Find two different rows that genuinely collide under the bank hash.
  std::uint64_t other_row = 0;
  for (std::uint64_t r = 1; r < 4096; ++r) {
    if (d.bank_of(r * cfg.row_bytes) == d.bank_of(0)) {
      other_row = r;
      break;
    }
  }
  ASSERT_NE(other_row, 0u);
  const Cycle same1 = d.access(0, 64, 0, {0});
  const Cycle same2 = d.access(other_row * cfg.row_bytes, 64, 0, {0});
  EXPECT_GT(same2, same1);  // same bank, different row: serialized

  // A row in a *different* bank overlaps its activate latency.
  std::uint64_t other_bank_row = 0;
  for (std::uint64_t r = 1; r < 4096; ++r) {
    if (d.bank_of(r * cfg.row_bytes) != d.bank_of(0)) {
      other_bank_row = r;
      break;
    }
  }
  Dram d2(cfg);
  d2.access(0, 64, 0, {0});
  const Cycle other_bank =
      d2.access(other_bank_row * cfg.row_bytes, 64, 0, {0});
  EXPECT_LT(other_bank, same2);
}

TEST(Dram, OpenRowStreamsAtBurstRate) {
  DramConfig cfg;
  Dram d(cfg);
  // After the first (miss) access, sequential lines in the same row stream
  // at roughly the channel burst rate, not one full CAS per line.
  const Cycle first = d.access(0, 64, 0, {0});
  // The second access refills the command pipeline (one CAS latency); all
  // later ones stream at burst rate.
  Cycle prev = d.access(64, 64, 0, {0});
  EXPECT_GT(prev, first);
  for (int i = 2; i <= 8; ++i) {
    const Cycle done = d.access(i * 64ull, 64, 0, {0});
    EXPECT_LE(done - prev, 8u);  // ~4-cycle bursts
    prev = done;
  }
}

TEST(DramConfigValidation, RejectsZeroChannels) {
  DramConfig bad;
  bad.channels = 0;
  EXPECT_THROW(bad.validate(), ConfigError);
}

TEST(DramConfigValidation, RejectsNonPowerOfTwoRows) {
  DramConfig bad;
  bad.row_bytes = 3000;
  EXPECT_THROW(bad.validate(), ConfigError);
  DramConfig bad2;
  bad2.interleave_bytes = 48;
  EXPECT_THROW(bad2.validate(), ConfigError);
}

TEST(DramConfigValidation, RejectsRefreshIntervalShorterThanLatency) {
  DramConfig bad;
  bad.refresh_interval = 50;
  bad.refresh_latency = 80;
  EXPECT_THROW(bad.validate(), ConfigError);
  // A refresh latency with no interval is equally meaningless.
  DramConfig orphan;
  orphan.refresh_latency = 10;
  EXPECT_THROW(orphan.validate(), ConfigError);
}

TEST(DramConfigValidation, RejectsDrainFloorAtOrAboveDepth) {
  DramConfig bad;
  bad.write_queue_depth = 4;
  bad.write_drain_floor = 4;
  EXPECT_THROW(bad.validate(), ConfigError);
  // A drain floor with no write queue would silently degrade to
  // write-through; reject the half-configured queue instead.
  DramConfig orphan;
  orphan.write_drain_floor = 4;
  EXPECT_THROW(orphan.validate(), ConfigError);
}

TEST(DramConfigValidation, AcceptsFullControllerConfig) {
  DramConfig ok;
  ok.channels = 4;
  ok.scheduler = DramScheduler::kFrFcfs;
  ok.interleave = DramInterleave::kXorFold;
  ok.refresh_interval = 7800;
  ok.refresh_latency = 280;
  ok.write_queue_depth = 16;
  ok.write_drain_floor = 4;
  EXPECT_NO_THROW(ok.validate());
}

TEST(DramConfigValidation, SocConfigValidateCoversTheDramSection) {
  // The DRAM knobs must fail at SocConfig::validate (and therefore at
  // sim::Session::build) rather than deep inside SoC elaboration.
  SocConfig cfg;
  cfg.mem.dram.channels = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);
  SocConfig cfg2;
  cfg2.mem.dram.refresh_interval = 10;
  cfg2.mem.dram.refresh_latency = 20;
  EXPECT_THROW(cfg2.validate(), ConfigError);
}

TEST(Dram, RefreshStallsIssuesAndClosesRows) {
  DramConfig cfg;
  cfg.refresh_interval = 1000;
  cfg.refresh_latency = 200;
  Dram d(cfg);
  // t=0 lands inside the first refresh window: the issue stalls to 200.
  const Cycle first = d.access(0, 64, 0, {0});
  EXPECT_GE(first, 200 + cfg.row_miss_latency);
  EXPECT_GT(d.stats().value("refresh_stall_cycles"), 0u);
  // Same row, same refresh period: still open, row hit.
  d.access(64, 64, first, {0});
  EXPECT_EQ(d.stats().value("row_hits"), 1u);
  // Next period: the all-bank refresh closed the row, so the same row
  // misses again.
  d.access(128, 64, 1500, {0});
  EXPECT_EQ(d.stats().value("row_misses"), 2u);
}

TEST(Dram, ChannelInterleaveSpreadsALineStream) {
  DramConfig cfg;
  cfg.channels = 2;
  cfg.interleave = DramInterleave::kCacheline;
  Dram d(cfg);
  for (int i = 0; i < 16; ++i) {
    d.access(static_cast<PAddr>(i) * 64, 64, static_cast<Cycle>(i) * 10, {0});
  }
  ASSERT_EQ(d.channel_stats().size(), 2u);
  EXPECT_EQ(d.channel_stats()[0].accesses, 8u);
  EXPECT_EQ(d.channel_stats()[1].accesses, 8u);
  // Per-requestor channel split sums back to the requestor total.
  const Dram::RequestorStats& rs = d.requestor_stats().front();
  EXPECT_EQ(rs.channel_bytes.at(0) + rs.channel_bytes.at(1), rs.bytes);
}

TEST(Dram, TwoChannelsFinishAStreamNoLaterThanOne) {
  auto last_completion = [](unsigned channels) {
    DramConfig cfg;
    cfg.channels = channels;
    cfg.interleave = DramInterleave::kCacheline;
    Dram d(cfg);
    Cycle last = 0;
    // A back-to-back line stream: bandwidth-bound on one channel.
    for (int i = 0; i < 64; ++i) {
      last = std::max(last, d.access(static_cast<PAddr>(i) * 64, 64, 0, {0}));
    }
    return last;
  };
  EXPECT_LE(last_completion(2), last_completion(1));
}

TEST(Dram, FrFcfsReadBypassesBufferedRowMissWrites) {
  DramConfig base;
  base.write_queue_depth = 8;
  base.write_drain_floor = 0;
  // A row that genuinely collides with row 0's bank under the bank hash.
  Dram probe(base);
  std::uint64_t other_row = 0;
  for (std::uint64_t r = 1; r < 4096; ++r) {
    if (probe.bank_of(r * base.row_bytes) == probe.bank_of(0)) {
      other_row = r;
      break;
    }
  }
  ASSERT_NE(other_row, 0u);

  auto read_completion = [&](DramScheduler sched) {
    DramConfig cfg = base;
    cfg.scheduler = sched;
    Dram d(cfg);
    d.access(0, 64, 0, {0});  // opens row 0
    // A row-conflicting writeback sits buffered in front of the read.
    d.write(other_row * cfg.row_bytes, 64, 90, {0});
    return d.access(64, 64, 100, {0});  // row-0 hit candidate
  };
  const Cycle fcfs = read_completion(DramScheduler::kFcfs);
  const Cycle frfcfs = read_completion(DramScheduler::kFrFcfs);
  // FCFS services the older row-miss write first; FR-FCFS lets the row-hit
  // read bypass it.
  EXPECT_LT(frfcfs, fcfs);
}

TEST(Dram, WriteQueueForceDrainsAtDepth) {
  DramConfig cfg;
  cfg.write_queue_depth = 4;
  cfg.write_drain_floor = 1;
  Dram d(cfg);
  for (int i = 0; i < 3; ++i) {
    d.write(static_cast<PAddr>(i) * 4096, 64, static_cast<Cycle>(i), {0});
  }
  EXPECT_EQ(d.pending_writes(), 3u);
  EXPECT_EQ(d.stats().value("accesses"), 0u);  // nothing issued yet
  d.write(3 * 4096, 64, 3, {0});               // hits the depth: drain to 1
  EXPECT_EQ(d.pending_writes(), 1u);
  EXPECT_EQ(d.stats().value("write_drains"), 1u);
  EXPECT_EQ(d.stats().value("writes_buffered"), 4u);
  EXPECT_EQ(d.stats().value("accesses"), 3u);
  d.drain_writes();
  EXPECT_EQ(d.pending_writes(), 0u);
  EXPECT_EQ(d.stats().value("accesses"), 4u);
}

TEST(Dram, ResetTimeClearsQueuesAndChannelStats) {
  DramConfig cfg;
  cfg.channels = 2;
  cfg.write_queue_depth = 8;
  cfg.write_drain_floor = 2;
  Dram d(cfg);
  d.access(0, 64, 0, {0});
  d.write(4096, 64, 10, {1});
  EXPECT_EQ(d.pending_writes(), 1u);
  d.reset_time();
  EXPECT_EQ(d.pending_writes(), 0u);
  EXPECT_TRUE(d.requestor_stats().empty());
  ASSERT_EQ(d.channel_stats().size(), 2u);
  for (const Dram::ChannelStats& cs : d.channel_stats()) {
    EXPECT_EQ(cs.accesses, 0u);
    EXPECT_EQ(cs.writes_buffered, 0u);
  }
}

TEST(MemSys, HitLatencyLowerThanMiss) {
  MemorySystem m(MemSysConfig{});
  const Cycle miss = m.access(0x1000, 64, false, 0, {0});
  m.reset_time();
  const Cycle hit = m.access(0x1000, 64, false, 0, {0});
  EXPECT_LT(hit, miss);
  EXPECT_EQ(m.l2().hits(), 1u);
}

TEST(MemSys, LargeAccessSplitsIntoLines) {
  MemorySystem m(MemSysConfig{});
  m.access(0, 1024, false, 0, {0});
  EXPECT_EQ(m.l2().misses(), 1024u / m.config().l2.line_bytes);
}

TEST(MemSys, WritebackTrafficReachesDram) {
  MemSysConfig cfg;
  cfg.l2.size_bytes = 4096;  // tiny L2 to force evictions
  cfg.l2.ways = 2;
  MemorySystem m(cfg);
  for (PAddr a = 0; a < 64 * 1024; a += 64) {
    m.access(a, 64, true, a, {0});
  }
  // Re-stream: every line dirty-evicted must have produced a writeback.
  EXPECT_GT(m.stats().value("l2_writebacks"), 0u);
}

TEST(MemSys, SharedRequestorsContend) {
  MemorySystem m(MemSysConfig{});
  // Two requestors issuing at the same instant: the second completes later.
  const Cycle a = m.access(0x0000, 64, false, 0, {0});
  const Cycle b = m.access(0x8000, 64, false, 0, {1});
  EXPECT_GT(b, a);
}

TEST(MemSys, UncachedBypassesL2) {
  MemorySystem m(MemSysConfig{});
  m.access_uncached(0x2000, 8, false, 0, {0});
  EXPECT_EQ(m.l2().hits() + m.l2().misses(), 0u);
}

}  // namespace
}  // namespace gemmini
