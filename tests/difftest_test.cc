// Randomized differential test harness (seeded, reproducible).
//
// Two oracle families, in the spirit of esp-isa-sim's cosimulation flow:
//
//   * Kernel differentials: random GEMM / conv dimensions pushed through the
//     blocked production kernels and checked bit-exact against the retained
//     naive loops (and, for conv, against the independent im2col+GEMM
//     lowering of the same layer).
//
//   * DRAM controller differentials: random request streams pushed through
//     the production controller and checked (a) bit-exact against an
//     independent brute-force reference model for the FCFS/write-through
//     configuration the golden cycles are pinned on, and (b) for
//     conservation (every request issued exactly once, bytes and access
//     counts preserved per requestor and per channel) under FR-FCFS with
//     write buffering and refresh, where completion times legitimately
//     differ by design.
//
// Every case derives from a fixed seed, so a failure reproduces exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/base/rng.h"
#include "src/base/tensor.h"
#include "src/cpu/kernels.h"
#include "src/mem/dram.h"

namespace gemmini {
namespace {

Activation random_act(Rng& rng) {
  switch (rng.next_below(3)) {
    case 0: return Activation::kNone;
    case 1: return Activation::kRelu;
    default: return Activation::kRelu6;
  }
}

// ---- GEMM: blocked production kernels vs retained naive oracles ------------

TEST(DiffTest, GemmI8BlockedMatchesNaiveOnRandomDims) {
  Rng rng(0xd1f'1u);
  for (int iter = 0; iter < 25; ++iter) {
    const std::size_t m = 1 + rng.next_below(96);
    const std::size_t k = 1 + rng.next_below(96);
    const std::size_t n = 1 + rng.next_below(96);
    const unsigned shift = static_cast<unsigned>(rng.next_below(11));
    const Activation act = random_act(rng);
    const bool with_bias = rng.next_below(2) == 0;

    TensorI8 a({m, k}), b({k, n}), c_fast({m, n}), c_naive({m, n});
    a.randomize(rng);
    b.randomize(rng);
    std::vector<std::int32_t> bias(n);
    for (auto& v : bias) v = static_cast<std::int32_t>(
        rng.next_range(-100000, 100000));

    ref::gemm_i8(a, b, with_bias ? bias.data() : nullptr, c_fast, shift, act);
    ref::gemm_i8_naive(a, b, with_bias ? bias.data() : nullptr, c_naive,
                       shift, act);
    ASSERT_EQ(c_fast, c_naive)
        << "iter " << iter << ": m=" << m << " k=" << k << " n=" << n
        << " shift=" << shift;
  }
}

TEST(DiffTest, GemmF32BlockedMatchesNaiveOnRandomDims) {
  Rng rng(0xd1f'2u);
  for (int iter = 0; iter < 15; ++iter) {
    const std::size_t m = 1 + rng.next_below(80);
    const std::size_t k = 1 + rng.next_below(80);
    const std::size_t n = 1 + rng.next_below(80);
    const Activation act = random_act(rng);
    const bool with_bias = rng.next_below(2) == 0;

    TensorF32 a({m, k}), b({k, n}), c_fast({m, n}), c_naive({m, n});
    a.randomize(rng);
    b.randomize(rng);
    std::vector<float> bias(n);
    for (auto& v : bias) v = rng.next_float_pm1();

    ref::gemm_f32(a, b, with_bias ? bias.data() : nullptr, c_fast, act);
    ref::gemm_f32_naive(a, b, with_bias ? bias.data() : nullptr, c_naive,
                        act);
    // fp32 blocked kernel preserves the naive accumulation order, so the
    // comparison is bit-exact, not approximate.
    ASSERT_EQ(c_fast, c_naive)
        << "iter " << iter << ": m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(DiffTest, GemmAccI32BlockedMatchesNaiveOnRandomDims) {
  Rng rng(0xd1f'3u);
  for (int iter = 0; iter < 15; ++iter) {
    const std::size_t m = 1 + rng.next_below(64);
    const std::size_t k = 1 + rng.next_below(64);
    const std::size_t n = 1 + rng.next_below(64);
    TensorI8 a({m, k}), b({k, n});
    TensorI32 c_fast({m, n}), c_naive({m, n});
    a.randomize(rng);
    b.randomize(rng);
    ref::gemm_i8_acc_i32(a, b, c_fast);
    ref::gemm_i8_acc_i32_naive(a, b, c_naive);
    ASSERT_EQ(c_fast, c_naive)
        << "iter " << iter << ": m=" << m << " k=" << k << " n=" << n;
  }
}

// ---- Conv: direct convolution vs the independent im2col + GEMM path --------

TEST(DiffTest, ConvDirectMatchesIm2colGemmOnRandomShapes) {
  Rng rng(0xd1f'4u);
  for (int iter = 0; iter < 12; ++iter) {
    const std::size_t ih = 3 + rng.next_below(14);
    const std::size_t iw = 3 + rng.next_below(14);
    const std::size_t ic = 1 + rng.next_below(8);
    const std::size_t oc = 1 + rng.next_below(8);
    const unsigned kh = 1 + 2 * static_cast<unsigned>(rng.next_below(2));
    const unsigned kw = kh;  // square kernels, like every zoo layer
    const unsigned stride = 1 + static_cast<unsigned>(rng.next_below(2));
    const unsigned padding = static_cast<unsigned>(rng.next_below(kh));
    if (ih + 2 * padding < kh || iw + 2 * padding < kw) continue;

    ref::ConvParams p;
    p.stride = stride;
    p.padding = padding;
    p.out_shift = static_cast<unsigned>(rng.next_below(8));
    p.act = random_act(rng);

    const std::size_t oh = ref::conv_out_dim(ih, kh, stride, padding);
    const std::size_t ow = ref::conv_out_dim(iw, kw, stride, padding);
    TensorI8 in({1, ih, iw, ic}), w({kh, kw, ic, oc});
    in.randomize(rng);
    w.randomize(rng);
    std::vector<std::int32_t> bias(oc);
    for (auto& v : bias) v = static_cast<std::int32_t>(
        rng.next_range(-5000, 5000));

    // Path A: direct convolution.
    TensorI8 direct({1, oh, ow, oc});
    ref::conv2d_i8(in, w, bias.data(), direct, p);

    // Path B: im2col patches x reshaped weights through the blocked GEMM.
    // Integer accumulation is exact in any order, so the two independent
    // loop nests must agree bit-for-bit.
    TensorI8 patches({oh * ow, kh * kw * ic});
    ref::im2col_i8(in, kh, kw, stride, padding, patches);
    TensorI8 wm({static_cast<std::size_t>(kh) * kw * ic, oc});
    std::memcpy(wm.data(), w.data(), w.size());
    TensorI8 gemm_out({oh * ow, oc});
    ref::gemm_i8(patches, wm, bias.data(), gemm_out, p.out_shift, p.act);

    ASSERT_EQ(0, std::memcmp(direct.data(), gemm_out.data(), direct.size()))
        << "iter " << iter << ": " << ih << "x" << iw << "x" << ic << " k"
        << kh << " s" << stride << " p" << padding << " oc" << oc;
  }
}

// ---- DRAM: production controller vs brute-force reference scheduler --------

/// Independent reimplementation of the seed DRAM timing semantics (immediate
/// issue in arrival order — what the production controller must reduce to
/// under FCFS + write-through + no refresh). Deliberately does not share any
/// code with src/mem/dram.cc beyond the DramConfig parameters.
class ReferenceDram {
 public:
  explicit ReferenceDram(const DramConfig& cfg) : cfg_(cfg) {
    banks_.assign(cfg.channels,
                  std::vector<Bank>(cfg.banks));
    chan_busy_.assign(cfg.channels, 0);
  }

  Cycle access(PAddr addr, std::uint64_t bytes, Cycle t) {
    const unsigned ci = channel(addr);
    const std::uint64_t row = addr / cfg_.row_bytes;
    Bank& bank = banks_[ci][bank_index(addr)];
    const bool hit = bank.open && bank.row == row;
    const Cycle lat = hit ? cfg_.row_hit_latency : cfg_.row_miss_latency;
    const Cycle start = std::max(t, bank.busy);
    const Cycle data_ready = start + lat;
    const Cycle burst_start = std::max(data_ready, chan_busy_[ci]);
    const Cycle burst = (bytes + cfg_.channel_width_bytes - 1) /
                        cfg_.channel_width_bytes;
    const Cycle done = burst_start + burst;
    bank.busy = hit ? start + 4 : start + lat;  // tCCD vs precharge+activate
    bank.open = true;
    bank.row = row;
    chan_busy_[ci] = done;
    return done;
  }

 private:
  struct Bank {
    bool open = false;
    std::uint64_t row = 0;
    Cycle busy = 0;
  };

  unsigned channel(PAddr addr) const {
    if (cfg_.channels == 1) return 0;
    const std::uint64_t gran = cfg_.interleave == DramInterleave::kRow
                                   ? cfg_.row_bytes
                                   : cfg_.interleave_bytes;
    return static_cast<unsigned>((addr / gran) % cfg_.channels);
  }

  unsigned bank_index(PAddr addr) const {
    const std::uint64_t row = addr / cfg_.row_bytes;
    std::uint64_t h = row;
    for (unsigned s = 3; s < 36; s += 3) h ^= row >> s;
    return static_cast<unsigned>(h % cfg_.banks);
  }

  DramConfig cfg_;
  std::vector<std::vector<Bank>> banks_;
  std::vector<Cycle> chan_busy_;
};

struct FuzzRequest {
  PAddr addr;
  std::uint64_t bytes;
  Cycle t;
  int requestor;
  bool is_write;
};

std::vector<FuzzRequest> random_stream(Rng& rng, std::size_t n,
                                       bool with_writes) {
  std::vector<FuzzRequest> stream;
  stream.reserve(n);
  Cycle t = 0;
  PAddr base = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // Mix of streaming (same-row) and jumping (row-conflict) accesses over
    // a few MB, line-sized like the L2's refill traffic.
    if (rng.next_below(4) == 0) base = rng.next_below(1 << 22) & ~63ull;
    const PAddr addr = (base + rng.next_below(16) * 64) & ~63ull;
    t += rng.next_below(60);
    stream.push_back({addr, 64, t,
                      static_cast<int>(rng.next_below(3)),
                      with_writes && rng.next_below(3) == 0});
  }
  return stream;
}

TEST(DiffTest, DramFcfsWriteThroughMatchesReferenceBitExact) {
  Rng rng(0xd1f'5u);
  for (const unsigned channels : {1u, 2u, 4u}) {
    for (const DramInterleave il :
         {DramInterleave::kRow, DramInterleave::kCacheline}) {
      DramConfig cfg;
      cfg.channels = channels;
      cfg.interleave = il;
      Dram dut(cfg);
      ReferenceDram oracle(cfg);
      const auto stream = random_stream(rng, 400, /*with_writes=*/false);
      for (std::size_t i = 0; i < stream.size(); ++i) {
        const FuzzRequest& r = stream[i];
        const Cycle got = dut.access(r.addr, r.bytes, r.t, {r.requestor});
        const Cycle want = oracle.access(r.addr, r.bytes, r.t);
        ASSERT_EQ(got, want) << "request " << i << " at addr " << r.addr
                             << " (channels=" << channels << ")";
      }
    }
  }
}

TEST(DiffTest, DramWriteThroughWritesMatchReferenceToo) {
  // Writes take the controller's write() path; in write-through mode their
  // timing must be the seed model's, which the read-side oracle also gives
  // (the seed model treated reads and writebacks identically).
  Rng rng(0xd1f'6u);
  DramConfig cfg;
  cfg.channels = 2;
  cfg.interleave = DramInterleave::kCacheline;
  Dram dut(cfg);
  ReferenceDram oracle(cfg);
  const auto stream = random_stream(rng, 400, /*with_writes=*/true);
  for (const FuzzRequest& r : stream) {
    const Cycle want = oracle.access(r.addr, r.bytes, r.t);
    if (r.is_write) {
      dut.write(r.addr, r.bytes, r.t, {r.requestor});
    } else {
      ASSERT_EQ(dut.access(r.addr, r.bytes, r.t, {r.requestor}), want);
    }
  }
  EXPECT_EQ(dut.pending_writes(), 0u);  // write-through leaves nothing queued
}

TEST(DiffTest, DramFrFcfsConservesRequestsBytesAndChannels) {
  Rng rng(0xd1f'7u);
  for (const DramScheduler sched :
       {DramScheduler::kFcfs, DramScheduler::kFrFcfs}) {
    DramConfig cfg;
    cfg.channels = 2;
    cfg.interleave = DramInterleave::kXorFold;
    cfg.scheduler = sched;
    cfg.write_queue_depth = 8;
    cfg.write_drain_floor = 2;
    cfg.refresh_interval = 2000;
    cfg.refresh_latency = 100;
    Dram dut(cfg);

    const auto stream = random_stream(rng, 600, /*with_writes=*/true);
    std::uint64_t total_bytes = 0;
    std::vector<std::uint64_t> bytes_by_requestor(3, 0);
    Cycle last_arrival = 0;
    for (const FuzzRequest& r : stream) {
      total_bytes += r.bytes;
      bytes_by_requestor[static_cast<std::size_t>(r.requestor)] += r.bytes;
      last_arrival = r.t;
      if (r.is_write) {
        dut.write(r.addr, r.bytes, r.t, {r.requestor});
      } else {
        const Cycle done = dut.access(r.addr, r.bytes, r.t, {r.requestor});
        // A read can never complete before its arrival plus the best-case
        // pipeline (CAS hit + one burst beat).
        EXPECT_GE(done, r.t + cfg.row_hit_latency + 1);
      }
    }
    dut.drain_writes();
    EXPECT_EQ(dut.pending_writes(), 0u);

    // Conservation: every request issued exactly once, all bytes accounted,
    // per-requestor and per-channel splits summing to the totals —
    // regardless of how the scheduler reordered the stream.
    EXPECT_EQ(dut.stats().value("accesses"), stream.size());
    EXPECT_EQ(dut.stats().value("bytes"), total_bytes);
    EXPECT_EQ(dut.stats().value("row_hits") + dut.stats().value("row_misses"),
              stream.size());

    std::uint64_t requestor_bytes_sum = 0;
    for (const Dram::RequestorStats& rs : dut.requestor_stats()) {
      EXPECT_EQ(rs.row_hits + rs.row_misses, rs.accesses);
      EXPECT_EQ(rs.bytes,
                bytes_by_requestor[static_cast<std::size_t>(rs.requestor)]);
      std::uint64_t channel_sum = 0;
      for (const std::uint64_t b : rs.channel_bytes) channel_sum += b;
      EXPECT_EQ(channel_sum, rs.bytes);
      requestor_bytes_sum += rs.bytes;
    }
    EXPECT_EQ(requestor_bytes_sum, total_bytes);

    std::uint64_t channel_accesses = 0, channel_bytes = 0;
    bool both_channels_used = true;
    for (const Dram::ChannelStats& cs : dut.channel_stats()) {
      channel_accesses += cs.accesses;
      channel_bytes += cs.bytes;
      both_channels_used = both_channels_used && cs.accesses > 0;
      EXPECT_EQ(cs.row_hits + cs.row_misses, cs.accesses);
    }
    EXPECT_EQ(channel_accesses, stream.size());
    EXPECT_EQ(channel_bytes, total_bytes);
    // The XOR-fold interleave must actually spread a multi-MB stream.
    EXPECT_TRUE(both_channels_used);
    // Refresh windows genuinely engaged over this horizon.
    EXPECT_GT(dut.stats().value("refresh_stall_cycles"), 0u);
    (void)last_arrival;
  }
}

TEST(DiffTest, DramSchedulersIssueIdenticalWorkDifferentOrder) {
  // FCFS and FR-FCFS see the same stream: the *work* (accesses, bytes,
  // per-channel split) must be identical even though completion times and
  // row-hit counts legitimately differ.
  Rng rng(0xd1f'8u);
  const auto stream = random_stream(rng, 500, /*with_writes=*/true);
  auto run = [&stream](DramScheduler sched) {
    DramConfig cfg;
    cfg.channels = 2;
    cfg.scheduler = sched;
    cfg.write_queue_depth = 8;
    cfg.write_drain_floor = 2;
    Dram d(cfg);
    for (const FuzzRequest& r : stream) {
      if (r.is_write) {
        d.write(r.addr, r.bytes, r.t, {r.requestor});
      } else {
        d.access(r.addr, r.bytes, r.t, {r.requestor});
      }
    }
    d.drain_writes();
    return std::pair<std::uint64_t, std::uint64_t>{
        d.stats().value("accesses"), d.stats().value("bytes")};
  };
  const auto fcfs = run(DramScheduler::kFcfs);
  const auto frfcfs = run(DramScheduler::kFrFcfs);
  EXPECT_EQ(fcfs, frfcfs);
  EXPECT_EQ(fcfs.first, stream.size());
}

}  // namespace
}  // namespace gemmini
