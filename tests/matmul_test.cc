// Tiled-matmul correctness: the accelerator's functional execution of
// runtime-emitted programs must match the golden reference kernel bit-for-
// bit across matrix shapes, dataflows, biases, activations and shifts.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/cpu/kernels.h"
#include "src/model/runner.h"
#include "src/runtime/matmul.h"
#include "tests/test_util.h"

namespace gemmini {
namespace {

using test::AccelHarness;

struct Shape {
  std::uint64_t m, k, n;
  bool bias;
  unsigned shift;
  Activation act;
  Dataflow df;
};

void run_case(AccelHarness& h, const Shape& s, std::uint64_t seed) {
  Rng rng(seed);
  TensorI8 a({s.m, s.k}), b({s.k, s.n}), c({s.m, s.n}), expect({s.m, s.n});
  a.randomize(rng);
  b.randomize(rng);
  std::vector<std::int8_t> bias_row(s.n);
  std::vector<std::int32_t> bias_i32(s.n, 0);
  if (s.bias) {
    for (std::size_t i = 0; i < s.n; ++i) {
      bias_row[i] = rng.next_int8();
      bias_i32[i] = bias_row[i];
    }
  }

  MatmulParams p;
  p.a = h.upload(a);
  p.b = h.upload(b);
  p.c = h.as.alloc(s.m * s.n + 8192);
  if (s.bias) {
    p.bias = h.as.alloc(s.n + 4096);
    h.as.write_virt(p.bias, bias_row.data(), bias_row.size());
  }
  p.m = s.m;
  p.k = s.k;
  p.n = s.n;
  p.out_shift = s.shift;
  p.act = s.act;
  p.dataflow = s.df;

  const Program prog = emit_tiled_matmul(h.config, p);
  h.accel.run(prog, h.as);

  ref::gemm_i8(a, b, s.bias ? bias_i32.data() : nullptr, expect, s.shift,
               s.act);
  const TensorI8 got = h.download<std::int8_t>(p.c, {s.m, s.n});
  for (std::size_t i = 0; i < s.m; ++i) {
    for (std::size_t j = 0; j < s.n; ++j) {
      ASSERT_EQ(got.at(i, j), expect.at(i, j))
          << "mismatch at (" << i << "," << j << ") for m=" << s.m
          << " k=" << s.k << " n=" << s.n << " bias=" << s.bias
          << " shift=" << s.shift;
    }
  }
}

TEST(TiledMatmul, SingleTileExact) {
  AccelHarness h;
  run_case(h, {16, 16, 16, false, 7, Activation::kNone,
               Dataflow::kWeightStationary},
           1);
}

TEST(TiledMatmul, SingleTileWithBias) {
  AccelHarness h;
  run_case(h, {16, 16, 16, true, 7, Activation::kNone,
               Dataflow::kWeightStationary},
           2);
}

TEST(TiledMatmul, MultiTileK) {
  AccelHarness h;
  run_case(h, {16, 256, 16, false, 10, Activation::kNone,
               Dataflow::kWeightStationary},
           3);
}

TEST(TiledMatmul, MultiTileAll) {
  AccelHarness h;
  run_case(h, {96, 128, 80, true, 10, Activation::kRelu,
               Dataflow::kWeightStationary},
           4);
}

TEST(TiledMatmul, RaggedEdges) {
  AccelHarness h;
  run_case(h, {33, 47, 21, true, 9, Activation::kRelu,
               Dataflow::kWeightStationary},
           5);
}

TEST(TiledMatmul, TinyMatrices) {
  AccelHarness h;
  run_case(h, {1, 1, 1, false, 0, Activation::kNone,
               Dataflow::kWeightStationary},
           6);
  run_case(h, {3, 5, 2, true, 4, Activation::kNone,
               Dataflow::kWeightStationary},
           7);
}

TEST(TiledMatmul, OutputStationaryDataflow) {
  AccelHarness h;
  run_case(h, {40, 64, 48, false, 9, Activation::kNone,
               Dataflow::kOutputStationary},
           8);
}

TEST(TiledMatmul, Relu6Activation) {
  AccelHarness h;
  run_case(h, {24, 32, 24, false, 12, Activation::kRelu6,
               Dataflow::kWeightStationary},
           9);
}

TEST(TiledMatmul, LargerThanScratchpadK) {
  // K deep enough to force multiple K-tiles and accumulator reuse.
  AccelHarness h;
  run_case(h, {32, 2048, 32, true, 12, Activation::kNone,
               Dataflow::kWeightStationary},
           10);
}

TEST(TiledMatmul, ManualTileOverride) {
  AccelHarness h;
  Rng rng(11);
  TensorI8 a({64, 64}), b({64, 64}), expect({64, 64});
  a.randomize(rng);
  b.randomize(rng);
  MatmulParams p;
  p.a = h.upload(a);
  p.b = h.upload(b);
  p.c = h.as.alloc(64 * 64 + 4096);
  p.m = p.k = p.n = 64;
  p.out_shift = 10;
  p.tile = TileShape{2, 2, 2};
  const Program prog = emit_tiled_matmul(h.config, p);
  h.accel.run(prog, h.as);
  ref::gemm_i8(a, b, nullptr, expect, 10, Activation::kNone);
  EXPECT_EQ(h.download<std::int8_t>(p.c, {64, 64}), expect);
}

TEST(TiledMatmul, ManualTileTooBigThrows) {
  AccelHarness h;
  MatmulParams p;
  p.a = p.b = p.c = 0x1000;
  p.m = p.k = p.n = 64;
  p.tile = TileShape{1000, 1000, 1000};
  EXPECT_THROW(emit_tiled_matmul(h.config, p), RuntimeError);
}

TEST(TiledMatmul, UnsupportedDataflowThrows) {
  GemminiConfig cfg = GemminiConfig::paper_default();
  cfg.dataflow = Dataflow::kWeightStationary;
  AccelHarness h(cfg);
  MatmulParams p;
  p.a = p.b = p.c = 0x1000;
  p.m = p.k = p.n = 16;
  p.dataflow = Dataflow::kOutputStationary;
  EXPECT_THROW(emit_tiled_matmul(h.config, p), RuntimeError);
}

// Property sweep: every (m, k, n) combination from a grid must match the
// reference exactly.
class MatmulSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(MatmulSweep, MatchesReference) {
  const auto [m, k, n] = GetParam();
  AccelHarness h;
  run_case(h,
           {static_cast<std::uint64_t>(m), static_cast<std::uint64_t>(k),
            static_cast<std::uint64_t>(n), (m + k + n) % 2 == 0,
            default_out_shift(static_cast<std::uint64_t>(k)),
            Activation::kNone,
            Dataflow::kWeightStationary},
           static_cast<std::uint64_t>(m * 10007 + k * 101 + n));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MatmulSweep,
    ::testing::Combine(::testing::Values(1, 7, 16, 17, 48),
                       ::testing::Values(1, 16, 31, 64),
                       ::testing::Values(1, 8, 16, 40)));

}  // namespace
}  // namespace gemmini
