#pragma once
// Bottleneck attribution: folds a recorded trace into a per-layer table
// that answers "where did this layer's cycles actually go?".
//
// Each layer's wall-clock span (the union of its WorkStep spans on the
// traced core) is decomposed into DISJOINT components:
//
//   cpu          host-CPU-resident work (im2col, special ops, dispatch)
//   compute      spatial-array preloads + compute tiles
//   translation  TLB-miss resolution and page walks
//   dram         DRAM bank access windows (row hits + misses)
//   bus_wait     stalled waiting for a bus grant (contention)
//   dma          remaining DMA streaming time (bus occupancy, line hits)
//   other        everything uncovered: dispatch gaps, hazard stalls,
//                local-SRAM reserve conflicts
//
// Overlapping activity is resolved by that priority order (while the array
// computes, concurrent DMA is latency-hidden and therefore *not* the
// bottleneck), so the components always sum EXACTLY to the span — a
// property tests assert, and what makes rows comparable across layers.
//
// Each row also cross-references estimate/roofline.h: measured MACs/cycle
// over the span vs. the roofline-attainable rate at the layer's modeled
// arithmetic intensity, so a glance separates "running at the roof" from
// "leaving performance on the table".

#include <cstdint>
#include <string>
#include <vector>

#include "src/arch/config.h"
#include "src/mem/memsys.h"
#include "src/sim/plan.h"
#include "src/trace/trace.h"

namespace gemmini::trace {

struct LayerBottleneck {
  std::size_t layer = 0;  ///< Model layer index
  std::string name;       ///< LayerSpec::name
  std::string kind;       ///< layer_kind_name
  std::string tag;        ///< Fig. 9 accounting tag

  Cycle span = 0;  ///< wall-clock cycles the layer occupied its core

  // Disjoint decomposition; sums exactly to `span`.
  Cycle cpu = 0;
  Cycle compute = 0;
  Cycle translation = 0;
  Cycle dram = 0;
  Cycle bus_wait = 0;
  Cycle dma = 0;
  Cycle other = 0;

  // Roofline cross-reference.
  std::uint64_t macs = 0;
  std::uint64_t dma_bytes = 0;  ///< modeled DRAM traffic (from the plan)
  double measured_macs_per_cycle = 0;
  double attainable_macs_per_cycle = 0;
  bool memory_bound = false;

  /// The components, largest first, as (name, cycles) pairs. `other` is
  /// included; zero components are skipped.
  std::vector<std::pair<std::string, Cycle>> top_components() const;

  friend bool operator==(const LayerBottleneck&, const LayerBottleneck&) =
      default;
};

struct BottleneckReport {
  std::vector<LayerBottleneck> layers;  ///< only layers that ran (span > 0)
  std::uint64_t dropped_events = 0;     ///< ring overflow; >0 means the
                                        ///< earliest layers may be partial

  /// Human-readable table (one row per layer, top-3 components named).
  std::string to_string() const;

  friend bool operator==(const BottleneckReport&, const BottleneckReport&) =
      default;
};

/// Attributes `events` (record order, as snapshotted from a sink) for the
/// layers of `plan`, on core `core`. `accel`/`mem` parameterize the
/// roofline cross-reference; `dropped` is the sink's overflow count.
BottleneckReport attribute_bottlenecks(const std::vector<TraceEvent>& events,
                                       const sim::Plan& plan,
                                       const GemminiConfig& accel,
                                       const MemSysConfig& mem,
                                       unsigned core = 0,
                                       std::uint64_t dropped = 0);

}  // namespace gemmini::trace
