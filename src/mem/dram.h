#pragma once
// DRAM timing model: multiple banks, open-row policy, per-channel bandwidth.
//
// Deliberately simple — the paper's results do not depend on DDR protocol
// minutiae, only on (a) DRAM being far slower than SRAM, (b) row-buffer
// locality rewarding streaming access, and (c) bounded bandwidth shared by
// all requestors.

#include <cstdint>
#include <vector>

#include "src/base/stats.h"
#include "src/base/status.h"
#include "src/base/types.h"

namespace gemmini {

struct DramConfig {
  unsigned banks = 8;
  std::uint64_t row_bytes = 2048;       ///< open-row granularity
  Cycle row_hit_latency = 30;           ///< CAS only
  Cycle row_miss_latency = 80;          ///< precharge + activate + CAS
  unsigned channel_width_bytes = 16;    ///< data bus bytes per cycle

  void validate() const {
    GEMMINI_CONFIG_REQUIRE(banks > 0, "DRAM needs at least one bank");
    GEMMINI_CONFIG_REQUIRE(row_bytes > 0 && (row_bytes & (row_bytes - 1)) == 0,
                           "row_bytes must be a power of two");
    GEMMINI_CONFIG_REQUIRE(channel_width_bytes > 0, "channel width > 0");
  }
};

class Dram {
 public:
  /// tCCD: cycles between column commands to the same open bank.
  static constexpr Cycle kColumnCommandOccupancy = 4;

  explicit Dram(const DramConfig& cfg) : cfg_(cfg) {
    cfg_.validate();
    banks_.assign(cfg_.banks, Bank{});
  }

  /// XOR-folded bank hash (as in real memory controllers): large-stride
  /// streams (e.g. three tensors 1 MB apart) spread across banks instead of
  /// ping-ponging one bank's row buffer.
  unsigned bank_of(PAddr addr) const {
    const std::uint64_t row = addr / cfg_.row_bytes;
    // Fold every row bit down into the bank index so power-of-two strides
    // at any scale spread across banks.
    std::uint64_t h = row;
    for (unsigned s = 3; s < 36; s += 3) h ^= row >> s;
    return static_cast<unsigned>(h % cfg_.banks);
  }

  /// One line-sized access issued at time `t`. Returns completion time.
  Cycle access(PAddr addr, std::uint64_t bytes, Cycle t,
               RequestorId requestor) {
    (void)requestor;
    const std::uint64_t row = addr / cfg_.row_bytes;
    Bank& bank = banks_[bank_of(addr)];

    const bool row_hit = bank.open_valid && bank.open_row == row;
    const Cycle access_lat =
        row_hit ? cfg_.row_hit_latency : cfg_.row_miss_latency;
    stats_.counter(row_hit ? "row_hits" : "row_misses").add();

    // The bank is busy until its previous access finishes; the shared data
    // channel serializes only the data *bursts*, so accesses to different
    // banks overlap their activate/CAS latencies.
    const Cycle start = t > bank.busy_until ? t : bank.busy_until;
    const Cycle data_ready = start + access_lat;
    const Cycle burst_start =
        data_ready > channel_busy_until_ ? data_ready : channel_busy_until_;
    const Cycle burst =
        (bytes + cfg_.channel_width_bytes - 1) / cfg_.channel_width_bytes;
    const Cycle done = burst_start + burst;
    // Column commands pipeline on an open row (tCCD), so streaming reads
    // from the same row proceed at burst rate; only a row miss occupies the
    // bank for the full precharge+activate window.
    bank.busy_until = row_hit ? start + kColumnCommandOccupancy
                              : start + access_lat;
    bank.open_valid = true;
    bank.open_row = row;
    channel_busy_until_ = done;
    stats_.counter("accesses").add();
    stats_.counter("bytes").add(bytes);
    return done;
  }

  const StatSet& stats() const { return stats_; }
  void reset_time() {
    for (auto& b : banks_) b = Bank{};
    channel_busy_until_ = 0;
  }

 private:
  struct Bank {
    bool open_valid = false;
    std::uint64_t open_row = 0;
    Cycle busy_until = 0;
  };

  DramConfig cfg_;
  std::vector<Bank> banks_;
  Cycle channel_busy_until_ = 0;
  StatSet stats_;
};

}  // namespace gemmini
