// Virtual-address-translation co-design (paper §V-A, Fig. 8): sweep private
// and shared TLB sizes for a low-power edge SoC running ResNet-50, with and
// without the filter-register optimization, and find the cheapest
// translation system within 2% of peak performance.
//
//   $ ./example_tlb_codesign [--fast]   (--fast uses a 96x96 input)

#include <cstdio>
#include <cstring>
#include <vector>

#include "src/core/gemmini.h"

using namespace gemmini;

int main(int argc, char** argv) {
  const bool fast = argc > 1 && std::strcmp(argv[1], "--fast") == 0;
  const Model model = zoo::resnet50(fast ? 96 : 224);

  struct Point {
    unsigned priv, shared;
    bool filters;
    Cycle cycles;
    double hit_rate;
  };
  std::vector<Point> points;
  Cycle best = kCycleMax;

  for (const bool filters : {false, true}) {
    for (const unsigned priv : {4u, 16u}) {
      for (const unsigned shared : {0u, 512u}) {
        SocConfig cfg = SocConfig::base_1mb_l2();
        cfg.accel.has_im2col = true;
        cfg.accel.translation.private_tlb.entries = priv;
        cfg.accel.translation.l2_tlb_present = shared > 0;
        cfg.accel.translation.l2_tlb.entries = shared > 0 ? shared : 1;
        cfg.accel.translation.filter_registers = filters;
        Generator gen(cfg);
        const RunReport r = gen.run_model(model);
        const auto& ts = gen.soc().accelerator(0).translation();
        points.push_back(
            {priv, shared, filters, r.cycles, ts.effective_private_hit_rate()});
        if (r.cycles < best) best = r.cycles;
      }
    }
  }

  std::printf("%-8s %-8s %-8s %-14s %-10s %s\n", "private", "L2-TLB",
              "filters", "cycles", "hit-rate", "vs-best");
  for (const auto& p : points) {
    std::printf("%-8u %-8u %-8s %-14lu %-10.1f %+.1f%%\n", p.priv, p.shared,
                p.filters ? "yes" : "no",
                static_cast<unsigned long>(p.cycles), 100.0 * p.hit_rate,
                100.0 * (static_cast<double>(p.cycles) /
                             static_cast<double>(best) -
                         1.0));
  }

  // The paper's conclusion: a 4-entry private TLB + filter registers and NO
  // shared L2 TLB lands within ~2% of the best configuration.
  for (const auto& p : points) {
    if (p.priv == 4 && p.shared == 0 && p.filters) {
      const double loss = static_cast<double>(p.cycles) /
                              static_cast<double>(best) -
                          1.0;
      std::printf("\n4-entry private TLB + filter registers, no L2 TLB: "
                  "%.1f%% from peak (paper: ~2%%)\n",
                  100.0 * loss);
    }
  }
  return 0;
}
