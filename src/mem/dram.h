#pragma once
// DRAM timing model: multiple banks, open-row policy, per-channel bandwidth.
//
// Deliberately simple — the paper's results do not depend on DDR protocol
// minutiae, only on (a) DRAM being far slower than SRAM, (b) row-buffer
// locality rewarding streaming access, and (c) bounded bandwidth shared by
// all requestors.

#include <cstdint>
#include <vector>

#include "src/base/stats.h"
#include "src/base/status.h"
#include "src/base/types.h"
#include "src/trace/trace.h"

namespace gemmini {

struct DramConfig {
  unsigned banks = 8;
  std::uint64_t row_bytes = 2048;       ///< open-row granularity
  Cycle row_hit_latency = 30;           ///< CAS only
  Cycle row_miss_latency = 80;          ///< precharge + activate + CAS
  unsigned channel_width_bytes = 16;    ///< data bus bytes per cycle

  void validate() const {
    GEMMINI_CONFIG_REQUIRE(banks > 0, "DRAM needs at least one bank");
    GEMMINI_CONFIG_REQUIRE(row_bytes > 0 && (row_bytes & (row_bytes - 1)) == 0,
                           "row_bytes must be a power of two");
    GEMMINI_CONFIG_REQUIRE(channel_width_bytes > 0, "channel width > 0");
  }
};

class Dram {
 public:
  /// tCCD: cycles between column commands to the same open bank.
  static constexpr Cycle kColumnCommandOccupancy = 4;

  /// Per-requestor share of DRAM traffic and row-buffer behaviour.
  struct RequestorStats {
    int requestor = 0;
    std::uint64_t accesses = 0;
    std::uint64_t bytes = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_misses = 0;

    friend bool operator==(const RequestorStats&, const RequestorStats&) =
        default;
  };

  explicit Dram(const DramConfig& cfg, trace::Tracer* tracer = nullptr)
      : cfg_(cfg), tracer_(tracer) {
    cfg_.validate();
    banks_.assign(cfg_.banks, Bank{});
  }

  /// XOR-folded bank hash (as in real memory controllers): large-stride
  /// streams (e.g. three tensors 1 MB apart) spread across banks instead of
  /// ping-ponging one bank's row buffer.
  unsigned bank_of(PAddr addr) const {
    const std::uint64_t row = addr / cfg_.row_bytes;
    // Fold every row bit down into the bank index so power-of-two strides
    // at any scale spread across banks.
    std::uint64_t h = row;
    for (unsigned s = 3; s < 36; s += 3) h ^= row >> s;
    return static_cast<unsigned>(h % cfg_.banks);
  }

  /// One line-sized access issued at time `t`. Returns completion time.
  Cycle access(PAddr addr, std::uint64_t bytes, Cycle t,
               RequestorId requestor) {
    const std::uint64_t row = addr / cfg_.row_bytes;
    const unsigned bank_idx = bank_of(addr);
    Bank& bank = banks_[bank_idx];

    const bool row_hit = bank.open_valid && bank.open_row == row;
    const Cycle access_lat =
        row_hit ? cfg_.row_hit_latency : cfg_.row_miss_latency;
    stats_.counter(row_hit ? "row_hits" : "row_misses").add();
    RequestorStats& rs = requestor_slot(requestor.value);
    rs.accesses += 1;
    rs.bytes += bytes;
    (row_hit ? rs.row_hits : rs.row_misses) += 1;

    // The bank is busy until its previous access finishes; the shared data
    // channel serializes only the data *bursts*, so accesses to different
    // banks overlap their activate/CAS latencies.
    const Cycle start = t > bank.busy_until ? t : bank.busy_until;
    const Cycle data_ready = start + access_lat;
    const Cycle burst_start =
        data_ready > channel_busy_until_ ? data_ready : channel_busy_until_;
    const Cycle burst =
        (bytes + cfg_.channel_width_bytes - 1) / cfg_.channel_width_bytes;
    const Cycle done = burst_start + burst;
    // Column commands pipeline on an open row (tCCD), so streaming reads
    // from the same row proceed at burst rate; only a row miss occupies the
    // bank for the full precharge+activate window.
    bank.busy_until = row_hit ? start + kColumnCommandOccupancy
                              : start + access_lat;
    bank.open_valid = true;
    bank.open_row = row;
    channel_busy_until_ = done;
    stats_.counter("accesses").add();
    stats_.counter("bytes").add(bytes);
    if (tracer_) {
      tracer_->span(row_hit ? trace::EventKind::kDramRowHit
                            : trace::EventKind::kDramRowMiss,
                    start, done, bytes, requestor.value, bank_idx);
    }
    return done;
  }

  const StatSet& stats() const { return stats_; }
  /// Per-requestor accounting, in first-seen order, since the last
  /// reset_time (i.e. one Session run).
  const std::vector<RequestorStats>& requestor_stats() const {
    return by_requestor_;
  }
  void reset_time() {
    for (auto& b : banks_) b = Bank{};
    channel_busy_until_ = 0;
    by_requestor_.clear();
  }

 private:
  struct Bank {
    bool open_valid = false;
    std::uint64_t open_row = 0;
    Cycle busy_until = 0;
  };

  RequestorStats& requestor_slot(int id) {
    for (RequestorStats& rs : by_requestor_) {
      if (rs.requestor == id) return rs;
    }
    by_requestor_.push_back(RequestorStats{id, 0, 0, 0, 0});
    return by_requestor_.back();
  }

  DramConfig cfg_;
  trace::Tracer* tracer_;
  std::vector<Bank> banks_;
  Cycle channel_busy_until_ = 0;
  StatSet stats_;
  std::vector<RequestorStats> by_requestor_;
};

}  // namespace gemmini
