// Floating-point datatype support (Table I: Gemmini handles Int *and*
// Float): the fp32 configuration must run the same programs with float
// payloads, bit-exactly matching the float reference kernels.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/cpu/kernels.h"
#include "src/runtime/matmul.h"
#include "tests/test_util.h"

namespace gemmini {
namespace {

GemminiConfig fp32_config() {
  GemminiConfig cfg = GemminiConfig::paper_default();
  cfg.name = "fp32-16x16";
  cfg.dtype = DType::kFp32;
  return cfg;
}

void run_fp32_case(std::uint64_t m, std::uint64_t k, std::uint64_t n,
                   bool bias, Activation act, std::uint64_t seed) {
  test::AccelHarness h(fp32_config());
  Rng rng(seed);
  TensorF32 a({m, k}), b({k, n}), expect({m, n});
  a.randomize(rng);
  b.randomize(rng);
  std::vector<float> bias_row(n, 0.0f);
  if (bias) {
    for (auto& v : bias_row) v = rng.next_float_pm1();
  }

  MatmulParams p;
  p.a = h.upload(a);
  p.b = h.upload(b);
  p.c = h.as.alloc(m * n * 4 + 8192);
  if (bias) {
    p.bias = h.as.alloc(n * 4 + 4096);
    h.as.write_virt(p.bias, bias_row.data(), n * 4);
  }
  p.m = m;
  p.k = k;
  p.n = n;
  p.act = act;

  const Program prog = emit_tiled_matmul(h.config, p);
  h.accel.run(prog, h.as);

  ref::gemm_f32(a, b, bias ? bias_row.data() : nullptr, expect, act);
  const TensorF32 got = h.download<float>(p.c, {m, n});
  const unsigned dim = h.config.dim();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (k <= dim) {
        // Single K-tile: accumulation order matches the reference exactly.
        ASSERT_EQ(got.at(i, j), expect.at(i, j)) << i << "," << j;
      } else {
        // Multiple K-tiles accumulate block partial sums, which reorders
        // the float additions — equal up to rounding.
        ASSERT_NEAR(got.at(i, j), expect.at(i, j),
                    1e-4f * static_cast<float>(k))
            << i << "," << j;
      }
    }
  }
}

TEST(Fp32Matmul, SingleTile) {
  run_fp32_case(16, 16, 16, false, Activation::kNone, 1);
}

TEST(Fp32Matmul, MultiTileWithBias) {
  run_fp32_case(48, 64, 32, true, Activation::kNone, 2);
}

TEST(Fp32Matmul, RaggedWithRelu) {
  run_fp32_case(21, 35, 13, true, Activation::kRelu, 3);
}

TEST(Fp32Matmul, DeepK) { run_fp32_case(16, 512, 16, false, Activation::kNone, 4); }

TEST(Fp32Config, RowGeometryAccountsForElementWidth) {
  const GemminiConfig cfg = fp32_config();
  EXPECT_EQ(cfg.sp_row_bytes(), 64u);   // 16 x 4B
  EXPECT_EQ(cfg.acc_row_bytes(), 64u);
  EXPECT_EQ(cfg.sp_rows(), 256u * 1024 / 64);
  cfg.validate();
}

TEST(Fp32Dma, RoundTripThroughScratchpad) {
  test::AccelHarness h(fp32_config());
  Rng rng(5);
  TensorF32 t({16, 16});
  t.randomize(rng);
  const VAddr src = h.upload(t);
  const VAddr dst = h.as.alloc(16 * 16 * 4 + 4096);
  Program prog{make_config_ld(64, 1.0f, 0), make_config_st(64),
               make_mvin(src, LocalAddr::sp_row(0), 16, 16),
               make_mvout(dst, LocalAddr::sp_row(0), 16, 16), make_fence()};
  h.accel.run(prog, h.as);
  EXPECT_EQ((h.download<float>(dst, {16, 16})), t);
}

TEST(Fp32Accumulator, MvinScaleAndAccumulate) {
  test::AccelHarness h(fp32_config());
  TensorF32 a({1, 4});
  a[0] = 1.5f; a[1] = -2.0f; a[2] = 0.25f; a[3] = 8.0f;
  const VAddr va = h.upload(a);
  const VAddr out = h.as.alloc(4096);
  Program prog{make_config_ex(Dataflow::kWeightStationary, Activation::kNone,
                              0),
               make_config_ld(16, 2.0f, 0), make_config_st(16),
               make_mvin(va, LocalAddr::acc_row(0, false), 1, 4),
               make_mvin(va, LocalAddr::acc_row(0, true), 1, 4),
               make_mvout(out, LocalAddr::acc_row(0, false), 1, 4),
               make_fence()};
  h.accel.run(prog, h.as);
  const TensorF32 got = h.download<float>(out, {1, 4});
  for (int i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(got[i], 4.0f * a[i]);  // 2x scale, accumulated twice
  }
}

}  // namespace
}  // namespace gemmini
