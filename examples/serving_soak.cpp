// Serving soak: drive the multi-core SoC with open-loop Poisson traffic
// (src/serve/) and walk the offered load through saturation, printing the
// goodput-vs-offered-load curve with exact tail latencies at every point.
//
// The interesting physics: below capacity the p99 hugs the single-inference
// latency; as the offered load crosses the calibrated capacity the queue —
// not the accelerator — becomes the product, goodput flattens at the
// capacity ceiling, and the bounded admission queue starts shedding so tail
// latency stays finite instead of growing with the backlog.
//
// The second half holds the load at 2x capacity and compares scheduling
// policies: FIFO (baseline), EDF with preemption (spends the overload on
// the requests whose deadlines are still winnable), and size-capped dynamic
// batching (amortizes the OS switch and serves batch tails from warm
// caches, buying back goodput).
//
//   $ ./example_serving_soak

#include <cstdio>
#include <vector>

#include "src/core/gemmini.h"

using namespace gemmini;

int main() {
  SocConfig cfg = SocConfig::base_1mb_l2();
  cfg.accel.has_im2col = true;
  cfg.cores = 2;
  const Model model = zoo::squeezenet_v11(48);

  // Calibrate the capacity from one real cycle-accurate inference, the same
  // number the serving layer uses for its own cold service time.
  sim::Session probe = sim::Session::builder(cfg).build();
  const Cycle cold = probe.run(model).cycles;
  const double capacity = cfg.cores * 1e6 / static_cast<double>(cold);
  std::printf("%s on %u cores: %llu cycles/inference -> capacity %.2f "
              "req/Mcycle\n\n",
              model.name().c_str(), cfg.cores,
              static_cast<unsigned long long>(cold), capacity);

  serve::ServeSpec spec;
  spec.enabled = true;
  spec.arrivals.horizon_cycles = 60 * cold;
  spec.arrivals.seed = 21;
  spec.scheduler.admission_capacity = 32;
  spec.default_deadline_cycles = 4 * cold;  // the SLO: 4x solo latency

  // Part 1: the soak — offered load from 10% to 300% of capacity under the
  // default FIFO policy, one sweep column per load.
  std::vector<double> loads;
  for (const double frac : {0.1, 0.5, 0.9, 1.2, 2.0, 3.0}) {
    loads.push_back(frac * capacity);
  }
  const std::vector<sim::Report> soak =
      sim::Experiment(cfg).model(model).serve(spec).offered_loads(loads).run();

  std::printf("%-10s %10s %12s %12s %12s %8s %6s %6s\n", "load/cap",
              "offered", "p50(cyc)", "p99(cyc)", "p99.9(cyc)", "goodput",
              "shed", "miss");
  for (std::size_t i = 0; i < soak.size(); ++i) {
    const sim::ServerStats& st = soak[i].server;
    std::printf("%-10.2f %10.3f %12llu %12llu %12llu %8.3f %6llu %6llu\n",
                loads[i] / capacity, st.offered_per_mcycle,
                static_cast<unsigned long long>(st.p50),
                static_cast<unsigned long long>(st.p99),
                static_cast<unsigned long long>(st.p999),
                st.goodput_per_mcycle,
                static_cast<unsigned long long>(st.shed),
                static_cast<unsigned long long>(st.deadline_misses));
  }

  // Part 2: policy shoot-out at 2x capacity on a two-class mix. A single
  // class makes EDF degenerate to FIFO (deadline = arrival + constant), so
  // blend an interactive class with a tight SLO against a throughput class
  // with none — now EDF spends the overload on the winnable deadlines and
  // batching groups the throughput class. The policy axis replaces the
  // spec's scheduler wholesale, so each column carries its own admission
  // bound.
  serve::ServeSpec mix = spec;
  mix.classes.push_back(
      serve::RequestClass{"interactive", model, 3.0, 2 * cold});
  mix.classes.push_back(serve::RequestClass{"bulk", model, 1.0, 0});
  serve::ServeConfig fifo;
  fifo.admission_capacity = 32;
  serve::ServeConfig edf = fifo;
  edf.policy = serve::ServePolicy::kEdf;
  serve::ServeConfig batch = fifo;
  batch.policy = serve::ServePolicy::kBatch;
  batch.max_batch = 4;
  std::printf("\npolicies at 2x capacity (interactive deadline %llu "
              "cycles, 3:1 mix with deadline-free bulk):\n",
              static_cast<unsigned long long>(2 * cold));
  const std::vector<sim::Report> duel =
      sim::Experiment(cfg)
          .model(model)
          .serve(mix)
          .offered_loads({2.0 * capacity})
          .serve_policies({fifo, edf, batch})
          .run();
  std::printf("%-10s %12s %12s %8s %6s %6s %8s\n", "policy", "p50(cyc)",
              "p99(cyc)", "goodput", "shed", "miss", "switches");
  for (const sim::Report& r : duel) {
    const sim::ServerStats& st = r.server;
    std::printf("%-10s %12llu %12llu %8.3f %6llu %6llu %8llu\n",
                st.policy.c_str(),
                static_cast<unsigned long long>(st.p50),
                static_cast<unsigned long long>(st.p99),
                st.goodput_per_mcycle,
                static_cast<unsigned long long>(st.shed),
                static_cast<unsigned long long>(st.deadline_misses),
                static_cast<unsigned long long>(st.context_switches));
  }
  return 0;
}
