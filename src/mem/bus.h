#pragma once
// Shared bus with bandwidth-limited, FIFO-arbitrated occupancy.
//
// The SoC has two buses, as in the Chipyard SoCs the paper instantiates:
// a system bus connecting host CPUs and accelerator DMAs to the shared L2,
// and a memory bus connecting the L2 to DRAM. Each transfer occupies the bus
// for ceil(bytes / width) cycles; a request arriving while the bus is busy
// waits, which is the mechanism behind multi-core contention in Fig. 9.

#include <cstdint>
#include <string>

#include "src/base/stats.h"
#include "src/base/status.h"
#include "src/base/types.h"

namespace gemmini {

struct BusConfig {
  unsigned width_bytes = 16;  ///< bytes transferred per cycle (128-bit TL-C)
  void validate() const {
    GEMMINI_CONFIG_REQUIRE(width_bytes > 0, "bus width must be positive");
  }
};

class Bus {
 public:
  explicit Bus(const BusConfig& cfg, std::string name = "bus")
      : cfg_(cfg), name_(std::move(name)) {
    cfg_.validate();
  }

  /// Requests the bus at time `t` for a `bytes`-byte transfer. Returns the
  /// cycle at which the transfer completes; the bus is busy until then.
  Cycle transfer(Cycle t, std::uint64_t bytes, RequestorId requestor) {
    (void)requestor;
    const Cycle occupancy =
        (bytes + cfg_.width_bytes - 1) / cfg_.width_bytes;
    const Cycle start = t > busy_until_ ? t : busy_until_;
    if (start > t) stats_.counter("wait_cycles").add(start - t);
    busy_until_ = start + occupancy;
    stats_.counter("busy_cycles").add(occupancy);
    stats_.counter("transfers").add();
    stats_.counter("bytes").add(bytes);
    return busy_until_;
  }

  Cycle busy_until() const { return busy_until_; }
  void reset_time() { busy_until_ = 0; }

  const BusConfig& config() const { return cfg_; }
  const StatSet& stats() const { return stats_; }

  /// Fraction of cycles busy in [0, horizon).
  double utilization(Cycle horizon) const {
    if (horizon == 0) return 0.0;
    return static_cast<double>(stats_.value("busy_cycles")) /
           static_cast<double>(horizon);
  }

 private:
  BusConfig cfg_;
  std::string name_;
  Cycle busy_until_ = 0;
  StatSet stats_;
};

}  // namespace gemmini
