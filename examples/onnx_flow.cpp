// Push-button flow (paper §III-B): read a network description in the
// ONNX-lite text format, lower it onto a generated accelerator, run it
// through `sim::Session`, and print the structured report — no
// accelerator-specific code in the model description.
//
//   $ ./example_onnx_flow [model.gonnx]
//
// Without an argument, runs a built-in SqueezeNet-flavored description.

#include <cstdio>

#include "src/core/gemmini.h"

using namespace gemmini;

namespace {
const char* kBuiltinModel = R"(
# A small CNN in the ONNX-lite push-button format.
model builtin-demo
input 32 32 3
conv 16 3 1 1 relu
maxpool 2 2
conv 32 3 1 1 relu      # feeds both the residual trunk and the shortcut
conv 32 3 1 1 none
resadd @3 @4 relu
gavgpool
dense 10 none
)";
}  // namespace

int main(int argc, char** argv) {
  Model model = argc > 1 ? load_onnx_lite_file(argv[1])
                         : parse_onnx_lite_string(kBuiltinModel);
  std::printf("%s", model.summary().c_str());

  SocConfig cfg;
  cfg.accel.has_im2col = true;
  sim::Session session = sim::Session::builder(cfg).build();

  // Compile first: the sim::Plan records the staged pipeline's decisions
  // (placement, per-matmul tiles, buffer layout, quantization shifts) and
  // serializes to the same deterministic JSON dialect as sim::Report.
  const sim::Plan plan = session.plan(model);
  std::printf("\n--- sim::Plan (JSON) ---\n%s\n", plan.to_json(2).c_str());

  const sim::Report r = session.run(plan);

  std::printf("\n%lu cycles (%.3f ms @ %.1f GHz), %.0fx speedup over %s\n",
              static_cast<unsigned long>(r.cycles), r.seconds * 1e3,
              session.config().accel.clock_ghz, r.speedup,
              session.config().cpu.name.c_str());
  std::printf("array utilization %.1f%%, %lu RoCC instructions executed\n",
              100.0 * r.array_utilization,
              static_cast<unsigned long>(r.per_core[0].accel.instructions));

  // The report is one structured object — sweep drivers and CI consume the
  // same JSON this prints.
  std::printf("\n--- sim::Report (JSON) ---\n%s\n", r.to_json(2).c_str());

  // Round-trip: serialize back to the text format.
  std::printf("\n--- round-tripped description ---\n%s",
              to_onnx_lite(model).c_str());
  return 0;
}
