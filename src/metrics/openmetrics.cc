#include "src/metrics/openmetrics.h"

#include <charconv>
#include <cstdio>

namespace gemmini::metrics {

namespace {

std::string sanitize(const std::string& prefix, const std::string& name) {
  std::string out = prefix;
  out.reserve(prefix.size() + 1 + name.size());
  out.push_back('_');
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_double(std::string& out, double v) {
  if (v != v) {  // NaN has no OpenMetrics representation worth keeping
    out.append("0");
    return;
  }
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

}  // namespace

std::string to_openmetrics(const Registry& reg, const std::string& prefix) {
  std::string out;
  for (const auto& [name, c] : reg.counters()) {
    const std::string n = sanitize(prefix, name);
    out += "# TYPE " + n + " counter\n";
    out += n + "_total ";
    append_u64(out, c.value());
    out.push_back('\n');
  }
  for (const auto& [name, g] : reg.gauges()) {
    const std::string n = sanitize(prefix, name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " ";
    append_double(out, g.value());
    out.push_back('\n');
  }
  for (const auto& [name, h] : reg.histograms()) {
    const std::string n = sanitize(prefix, name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cumulative = 0;
    const auto& buckets = h.buckets();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      cumulative += buckets[i];
      out += n + "_bucket{le=\"";
      if (i + 1 == buckets.size()) {
        out += "+Inf";
      } else {
        append_u64(out, h.upper_bound(i));
      }
      out += "\"} ";
      append_u64(out, cumulative);
      out.push_back('\n');
    }
    out += n + "_sum ";
    append_u64(out, h.sum());
    out.push_back('\n');
    out += n + "_count ";
    append_u64(out, h.count());
    out.push_back('\n');
  }
  out += "# EOF\n";
  return out;
}

bool write_openmetrics(const Registry& reg, const std::string& path,
                       const std::string& prefix) {
  const std::string doc = to_openmetrics(reg, prefix);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool ok = written == doc.size() && std::fclose(f) == 0;
  if (!ok && written != doc.size()) std::fclose(f);
  return ok;
}

}  // namespace gemmini::metrics
