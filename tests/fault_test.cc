// Tests for the fault-injection & resilience subsystem: seeded injection
// determinism, ECC semantics on the DRAM read path, DMA retry/abort, the
// SoC watchdog, fail-soft sweeps, and fault campaigns (classification
// against a fault-free golden run).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/model/graph.h"
#include "src/sim/experiment.h"
#include "src/sim/report.h"
#include "src/sim/session.h"
#include "src/trace/trace.h"

namespace gemmini {
namespace {

// Small but representative: conv (im2col DMA traffic + tiles) into a dense
// head whose logits make output corruption visible.
Model tiny_model() {
  ModelBuilder b("fault-tiny");
  b.input(12, 12, 8);
  b.conv(16, 3, 1, 1, Activation::kRelu);
  b.dense(10);
  return b.build();
}

SocConfig fault_base() {
  SocConfig cfg;
  cfg.faults.enabled = true;
  cfg.faults.seed = 99;
  return cfg;
}

sim::Session make_session(const SocConfig& cfg, bool functional = true) {
  return sim::Session::builder(cfg).functional(functional).seed(7).build();
}

std::vector<std::uint8_t> read_output(sim::Session& s) {
  const LoweredModel& lm = s.last_lowered();
  std::vector<std::uint8_t> out(lm.layer_bytes.back());
  s.address_space().read_virt(lm.layer_output.back(), out.data(), out.size());
  return out;
}

// ---- Config validation ------------------------------------------------------

TEST(FaultConfig, ValidatesRatesAndShape) {
  fault::FaultConfig fc;
  fc.enabled = true;
  fc.dram_read_flip_rate = 1.5;
  EXPECT_THROW(fc.validate(), ConfigError);

  fault::FaultConfig bits;
  bits.enabled = true;
  bits.dram_flip_bits = 0;
  EXPECT_THROW(bits.validate(), ConfigError);

  // Disabled configs skip validation entirely (rates may be garbage while
  // the axis is parked).
  fault::FaultConfig off;
  off.dram_read_flip_rate = 7.0;
  EXPECT_NO_THROW(off.validate());

  SocConfig cfg;
  cfg.faults.enabled = true;
  cfg.faults.sp_flip_rate = -0.5;
  EXPECT_THROW(sim::Session::builder(cfg).build(), ConfigError);
}

// ---- Zero-fault bit-identity ------------------------------------------------

TEST(FaultInjection, ZeroRateRunsAreBitIdentical) {
  const Model m = tiny_model();
  sim::Session plain = make_session(SocConfig{});
  const sim::Report base = plain.run(m);

  // Injector present but every rate zero: no draws, no perturbation.
  SocConfig armed = fault_base();
  sim::Session with_injector = make_session(armed);
  const sim::Report armed_rep = with_injector.run(m);
  EXPECT_EQ(armed_rep.cycles, base.cycles);
  EXPECT_EQ(armed_rep.cycles_by_tag, base.cycles_by_tag);
  EXPECT_TRUE(armed_rep.reliability.enabled);
  EXPECT_EQ(armed_rep.reliability.injection.total_injected(), 0u);

  // Rates set but the layer disabled: no injector is even built.
  SocConfig disarmed;
  disarmed.faults.dram_read_flip_rate = 0.5;
  disarmed.faults.dma_timeout_rate = 0.5;
  sim::Session off = make_session(disarmed);
  const sim::Report off_rep = off.run(m);
  EXPECT_EQ(off_rep.cycles, base.cycles);
  EXPECT_FALSE(off_rep.reliability.enabled);
}

TEST(FaultInjection, SameSeedReproducesSameRun) {
  SocConfig cfg = fault_base();
  cfg.faults.dram_read_flip_rate = 0.05;
  cfg.faults.ecc.enabled = true;
  sim::Session a = make_session(cfg);
  sim::Session b = make_session(cfg);
  const sim::Report ra = a.run(tiny_model());
  const sim::Report rb = b.run(tiny_model());
  EXPECT_EQ(ra, rb);
  EXPECT_EQ(ra.to_json(), rb.to_json());
  // And repeated runs of one session re-seed via Soc::reset_time.
  const sim::Report ra2 = a.run(tiny_model());
  EXPECT_EQ(ra2.reliability.injection, ra.reliability.injection);
}

// ---- DRAM flips & ECC -------------------------------------------------------

TEST(FaultInjection, EccCorrectsSingleBitFlips) {
  const Model m = tiny_model();
  sim::Session golden = make_session(SocConfig{});
  const sim::Report gr = golden.run(m);
  const auto golden_out = read_output(golden);

  SocConfig cfg = fault_base();
  cfg.faults.dram_read_flip_rate = 0.05;
  cfg.faults.dram_flip_bits = 1;
  cfg.faults.ecc.enabled = true;
  sim::Session s = make_session(cfg);
  const sim::Report r = s.run(m);

  const auto& inj = r.reliability.injection;
  EXPECT_GT(inj.dram_read_flips, 0u);
  EXPECT_EQ(inj.ecc_corrected, inj.dram_read_flips);
  EXPECT_EQ(inj.ecc_detected_uncorrectable, 0u);
  EXPECT_EQ(inj.silent_flips, 0u);
  EXPECT_GT(inj.ecc_correction_cycles, 0u);
  // Correction never corrupts data, and its latency is charged.
  EXPECT_EQ(read_output(s), golden_out);
  EXPECT_GE(r.cycles, gr.cycles);
}

TEST(FaultInjection, SilentFlipsCorruptOutputWithoutEcc) {
  const Model m = tiny_model();
  sim::Session golden = make_session(SocConfig{});
  golden.run(m);
  const auto golden_out = read_output(golden);

  SocConfig cfg = fault_base();
  cfg.faults.dram_read_flip_rate = 0.3;
  cfg.faults.dram_flip_bits = 4;
  sim::Session s = make_session(cfg);
  s.run(m);
  const auto& inj = s.soc().fault_injector()->stats();
  EXPECT_GT(inj.silent_flips, 0u);
  EXPECT_EQ(inj.ecc_corrected, 0u);
  EXPECT_NE(read_output(s), golden_out);
}

TEST(FaultInjection, MultiBitFlipsAreDetectedUncorrectable) {
  SocConfig cfg = fault_base();
  cfg.faults.dram_read_flip_rate = 0.1;
  cfg.faults.dram_flip_bits = 2;  // beyond SECDED correction
  cfg.faults.ecc.enabled = true;
  sim::Session s = make_session(cfg);
  s.run(tiny_model());
  const auto& inj = s.soc().fault_injector()->stats();
  EXPECT_GT(inj.ecc_detected_uncorrectable, 0u);
  EXPECT_EQ(inj.ecc_corrected, 0u);
  EXPECT_EQ(inj.silent_flips, 0u);
}

// ---- SRAM, translation, exec ------------------------------------------------

TEST(FaultInjection, SramFlipCountersTrack) {
  SocConfig cfg = fault_base();
  cfg.faults.sp_flip_rate = 0.05;
  cfg.faults.acc_flip_rate = 0.05;
  sim::Session s = make_session(cfg);
  s.run(tiny_model());
  const auto& inj = s.soc().fault_injector()->stats();
  EXPECT_GT(inj.sp_flips, 0u);
  EXPECT_GT(inj.acc_flips, 0u);
}

TEST(FaultInjection, TranslationFaultsChargeFixedPenalty) {
  const sim::Report base = make_session(SocConfig{}).run(tiny_model());

  SocConfig cfg = fault_base();
  cfg.faults.translation_fault_rate = 0.02;
  cfg.faults.translation_fault_penalty = 200;
  sim::Session s = make_session(cfg);
  const sim::Report r = s.run(tiny_model());
  const auto& inj = r.reliability.injection;
  EXPECT_GT(inj.translation_faults, 0u);
  EXPECT_EQ(inj.translation_fault_cycles, inj.translation_faults * 200u);
  EXPECT_GT(r.cycles, base.cycles);
}

TEST(FaultInjection, ExecTileErrorsCorruptComputedOutput) {
  const Model m = tiny_model();
  sim::Session golden = make_session(SocConfig{});
  golden.run(m);
  const auto golden_out = read_output(golden);

  SocConfig cfg = fault_base();
  cfg.faults.exec_tile_error_rate = 0.1;
  sim::Session s = make_session(cfg);
  s.run(m);
  EXPECT_GT(s.soc().fault_injector()->stats().exec_tile_errors, 0u);
  EXPECT_NE(read_output(s), golden_out);
}

// ---- DMA retry --------------------------------------------------------------

TEST(FaultInjection, DmaRetriesChargeRealCycles) {
  const sim::Report base = make_session(SocConfig{}).run(tiny_model());

  SocConfig cfg = fault_base();
  cfg.faults.dma_timeout_rate = 0.01;
  sim::Session s = make_session(cfg);
  const sim::Report r = s.run(tiny_model());
  const auto& inj = r.reliability.injection;
  EXPECT_GT(inj.dma_timeouts, 0u);
  EXPECT_EQ(inj.dma_retries, inj.dma_timeouts);
  EXPECT_GT(inj.dma_retry_cycles, 0u);
  EXPECT_EQ(inj.dma_aborts, 0u);
  EXPECT_GT(r.cycles, base.cycles);
}

TEST(FaultInjection, DmaRetryExhaustionAborts) {
  SocConfig cfg = fault_base();
  cfg.faults.dma_timeout_rate = 1.0;  // every attempt times out
  cfg.faults.dma_max_retries = 3;
  sim::Session s = make_session(cfg);
  EXPECT_THROW(s.run(tiny_model()), RuntimeError);
  const auto& inj = s.soc().fault_injector()->stats();
  EXPECT_EQ(inj.dma_aborts, 1u);
  EXPECT_EQ(inj.dma_retries, 3u);
}

// ---- Watchdog ---------------------------------------------------------------

TEST(Watchdog, SingleCoreHangThrowsStructuredError) {
  SocConfig cfg;
  cfg.name = "wd-test";
  cfg.max_cycles = 1000;
  sim::Session s = make_session(cfg, /*functional=*/false);
  try {
    s.run(tiny_model());
    FAIL() << "watchdog should have fired";
  } catch (const WatchdogError& e) {
    EXPECT_EQ(e.soc_name(), "wd-test");
    EXPECT_EQ(e.limit(), 1000u);
    EXPECT_GT(e.cycles(), 1000u);
    EXPECT_EQ(e.core(), 0u);
    EXPECT_LT(e.steps_done(), e.steps_total());
    const std::string msg = e.what();
    EXPECT_NE(msg.find("watchdog"), std::string::npos);
    EXPECT_NE(msg.find("wd-test"), std::string::npos);
  }
}

TEST(Watchdog, FiresOnMulticoreRuns) {
  SocConfig cfg;
  cfg.cores = 2;
  cfg.max_cycles = 2000;
  sim::Session s = sim::Session::builder(cfg).build();
  EXPECT_THROW(s.run_multicore(tiny_model()), WatchdogError);
}

TEST(Watchdog, GenerousBudgetDoesNotFire) {
  SocConfig cfg;
  cfg.max_cycles = 1u << 30;
  sim::Session s = make_session(cfg);
  EXPECT_NO_THROW(s.run(tiny_model()));
}

TEST(Watchdog, ValidatesAgainstOsSwitchCost) {
  SocConfig cfg;
  cfg.os.enabled = true;
  cfg.max_cycles = cfg.os.switch_cost_cycles;  // not > switch cost
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg.max_cycles = 0;  // watchdog off is always fine
  EXPECT_NO_THROW(cfg.validate());
}

// ---- Fail-soft sweeps -------------------------------------------------------

sim::Sweep poisoned_sweep() {
  sim::Sweep sw;
  SocConfig ok1;
  ok1.name = "ok1";
  sw.add("p0", ok1, tiny_model());
  SocConfig poisoned;
  poisoned.name = "poisoned";
  poisoned.max_cycles = 500;  // watchdog kills this point at run time
  sw.add("p1", poisoned, tiny_model());
  SocConfig ok2;
  ok2.name = "ok2";
  ok2.mem.l2.size_bytes = 2ull << 20;
  sw.add("p2", ok2, tiny_model());
  return sw;
}

TEST(FailSoftSweep, PoisonedPointDoesNotLoseTheOthers) {
  const sim::Sweep sw = poisoned_sweep();
  const std::vector<sim::Report> reports = sw.run({.threads = 2});
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0].status, "ok");
  EXPECT_GT(reports[0].cycles, 0u);
  EXPECT_EQ(reports[1].status, "error");
  EXPECT_EQ(reports[1].point, "p1");
  EXPECT_EQ(reports[1].config, "poisoned");
  EXPECT_NE(reports[1].error.find("watchdog"), std::string::npos);
  EXPECT_EQ(reports[1].cycles, 0u);
  EXPECT_EQ(reports[2].status, "ok");
  EXPECT_GT(reports[2].cycles, 0u);
}

TEST(FailSoftSweep, DeterministicAcrossThreadCounts) {
  const sim::Sweep sw = poisoned_sweep();
  const std::string serial = sim::reports_to_json(sw.run({.threads = 1}));
  EXPECT_EQ(serial, sim::reports_to_json(sw.run({.threads = 2})));
  EXPECT_EQ(serial, sim::reports_to_json(sw.run({.threads = 4})));
}

TEST(FailSoftSweep, StrictModePreservesRethrow) {
  const sim::Sweep sw = poisoned_sweep();
  try {
    sw.run({.threads = 2, .strict = true});
    FAIL() << "strict sweep should rethrow the poisoned point";
  } catch (const RuntimeError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("p1"), std::string::npos);
    EXPECT_NE(msg.find("watchdog"), std::string::npos);
  }
}

TEST(FailSoftSweep, ErrorReportSerializesStatus) {
  const std::vector<sim::Report> reports =
      poisoned_sweep().run({.threads = 1});
  const std::string json = reports[1].to_json();
  EXPECT_NE(json.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("watchdog"), std::string::npos);
  EXPECT_NE(reports[0].to_json().find("\"status\":\"ok\""),
            std::string::npos);
}

// ---- Fault campaigns --------------------------------------------------------

fault::FaultConfig ecc_single_bit() {
  fault::FaultConfig fc;
  fc.enabled = true;
  fc.name = "ecc1b";
  fc.seed = 5;
  fc.dram_read_flip_rate = 0.05;
  fc.dram_flip_bits = 1;
  fc.ecc.enabled = true;
  return fc;
}

TEST(FaultCampaign, EccOnCorrectsEverySingleBitFlip) {
  const std::vector<sim::Report> reports =
      sim::Experiment(SocConfig{})
          .model(tiny_model())
          .functional()
          .fault_configs({ecc_single_bit()})
          .fault_campaign(4)
          .run({.threads = 2});
  ASSERT_EQ(reports.size(), 1u);
  const sim::ReliabilityReport& rel = reports[0].reliability;
  EXPECT_TRUE(rel.enabled);
  EXPECT_EQ(rel.campaign_runs, 4u);
  ASSERT_EQ(rel.run_outcomes.size(), 4u);
  EXPECT_GT(rel.injection.ecc_corrected, 0u);
  EXPECT_GT(rel.corrected, 0u);
  EXPECT_EQ(rel.sdc, 0u);
  EXPECT_EQ(rel.detected, 0u);
  EXPECT_EQ(rel.masked + rel.corrected, 4u);
  EXPECT_EQ(rel.sdc_rate, 0.0);
  EXPECT_GT(rel.golden_cycles, 0u);
  // The campaign report's timing numbers are the golden run's.
  EXPECT_EQ(reports[0].cycles, rel.golden_cycles);
}

TEST(FaultCampaign, SilentCorruptionClassifiesAsSdc) {
  fault::FaultConfig fc;
  fc.enabled = true;
  fc.name = "noecc";
  fc.seed = 5;
  fc.dram_read_flip_rate = 0.3;
  fc.dram_flip_bits = 4;
  const std::vector<sim::Report> reports =
      sim::Experiment(SocConfig{})
          .model(tiny_model())
          .functional()
          .fault_configs({fc})
          .fault_campaign(3)
          .run({.threads = 1});
  ASSERT_EQ(reports.size(), 1u);
  const sim::ReliabilityReport& rel = reports[0].reliability;
  EXPECT_GT(rel.sdc, 0u);
  EXPECT_GT(rel.sdc_rate, 0.0);
}

TEST(FaultCampaign, BaselineColumnRunsOnceWithoutCampaign) {
  fault::FaultConfig baseline;  // disabled: a fault-free column
  baseline.name = "base";
  const std::vector<sim::Report> reports =
      sim::Experiment(SocConfig{})
          .model(tiny_model())
          .functional()
          .fault_configs({baseline, ecc_single_bit()})
          .fault_campaign(2)
          .run({.threads = 2});
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].point, "base/fault-tiny");
  EXPECT_FALSE(reports[0].reliability.enabled);
  EXPECT_EQ(reports[0].reliability.campaign_runs, 0u);
  EXPECT_EQ(reports[1].point, "ecc1b/fault-tiny");
  EXPECT_EQ(reports[1].reliability.campaign_runs, 2u);
}

TEST(FaultCampaign, ByteIdenticalAcrossRepeatsAndThreadCounts) {
  auto run_with = [](unsigned threads) {
    return sim::reports_to_json(sim::Experiment(SocConfig{})
                                    .model(tiny_model())
                                    .functional()
                                    .fault_configs({ecc_single_bit()})
                                    .fault_campaign(3)
                                    .run({.threads = threads}));
  };
  const std::string first = run_with(1);
  EXPECT_EQ(first, run_with(1));  // repeatable
  EXPECT_EQ(first, run_with(2));  // thread-count independent
  EXPECT_EQ(first, run_with(4));
}

TEST(FaultCampaign, RequiresFunctionalSingleCore) {
  sim::SweepPoint p{"bad",
                    SocConfig{},
                    tiny_model(),
                    /*multicore=*/false,
                    /*functional=*/false,
                    /*seed=*/1,
                    /*placement=*/nullptr,
                    /*tiling=*/nullptr,
                    /*trace=*/{},
                    /*campaign_runs=*/2};
  p.config.faults = ecc_single_bit();
  EXPECT_THROW(sim::Sweep::run_point(p), ConfigError);

  p.functional = true;
  p.config.faults.enabled = false;
  EXPECT_THROW(sim::Sweep::run_point(p), ConfigError);
}

// ---- Trace integration ------------------------------------------------------

TEST(FaultTrace, EccCorrectionsAppearInTheTrace) {
  SocConfig cfg = fault_base();
  cfg.faults.dram_read_flip_rate = 0.05;
  cfg.faults.ecc.enabled = true;
  sim::Session s = sim::Session::builder(cfg)
                       .functional()
                       .seed(7)
                       .trace(trace::TraceConfig::enabled_default())
                       .build();
  const sim::Report r = s.run(tiny_model());
  const auto events = s.trace_buffer().snapshot();
  const auto corrections =
      std::count_if(events.begin(), events.end(), [](const auto& e) {
        return e.kind == trace::EventKind::kFaultEccCorrect;
      });
  EXPECT_EQ(static_cast<std::uint64_t>(corrections),
            r.reliability.injection.ecc_corrected);
  // Fault events don't break bottleneck attribution.
  EXPECT_FALSE(r.bottlenecks.empty());
}

TEST(FaultTrace, RingBufferDropAccountingIsExact) {
  trace::RingBufferSink sink(4);
  for (int i = 0; i < 11; ++i) {
    trace::TraceEvent e;
    e.begin = e.end = static_cast<Cycle>(i);
    sink.record(e);
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.dropped(), 7u);  // exact, not saturating
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().begin, 7u);  // oldest survivor
  EXPECT_EQ(events.back().begin, 10u);
}

TEST(FaultTrace, DroppedEventsSurfaceInReportWhenBufferWraps) {
  SocConfig cfg;
  trace::TraceConfig tc;
  tc.enabled = true;
  tc.buffer_events = 64;  // far too small for a whole run
  sim::Session s = sim::Session::builder(cfg).trace(tc).build();
  const sim::Report r = s.run(tiny_model());
  EXPECT_GT(r.trace_dropped_events, 0u);
  EXPECT_EQ(r.trace_dropped_events, s.trace_buffer().dropped());
}

}  // namespace
}  // namespace gemmini
