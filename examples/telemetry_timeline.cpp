// Telemetry quickstart: run an LLM decode with the metric registry and the
// cycle-windowed sampler attached, then render the per-window DRAM row-hit
// rate (and a few companion timelines) as terminal sparklines.
//
// The sampler snapshots every counter each `sample_interval_cycles`,
// recording per-window deltas, so a row-hit *rate* timeline falls out of
// two counter timelines: row_hits / (row_hits + row_misses) per window.
// Decode's phase structure is visible in the shape — the prefill GEMM
// streams long row bursts, then the per-token GEMV phase settles into the
// steady row-hit rate the KV-cache layout allows.
//
//   $ ./telemetry_timeline

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/gemmini.h"

using namespace gemmini;

namespace {

/// Renders values in [0, 1] as a U+2581..U+2588 sparkline.
std::string sparkline(const std::vector<double>& values) {
  static const char* kBars[] = {"▁", "▂", "▃", "▄",
                                "▅", "▆", "▇", "█"};
  std::string out;
  for (const double v : values) {
    const double clamped = v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v);
    int idx = static_cast<int>(clamped * 8.0);
    if (idx > 7) idx = 7;
    out += kBars[idx];
  }
  return out;
}

/// Per-window ratio of two counter timelines (0 where both are quiet).
std::vector<double> rate_of(const std::vector<std::uint64_t>& num,
                            const std::vector<std::uint64_t>& den_extra) {
  std::vector<double> out(num.size(), 0.0);
  for (std::size_t i = 0; i < num.size(); ++i) {
    const std::uint64_t total = num[i] + den_extra[i];
    if (total != 0) {
      out[i] = static_cast<double>(num[i]) / static_cast<double>(total);
    }
  }
  return out;
}

/// Normalizes a timeline to [0, 1] by its own peak window.
std::vector<double> normalized(const std::vector<std::uint64_t>& v) {
  std::uint64_t peak = 0;
  for (const std::uint64_t x : v) peak = x > peak ? x : peak;
  std::vector<double> out(v.size(), 0.0);
  if (peak == 0) return out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = static_cast<double>(v[i]) / static_cast<double>(peak);
  }
  return out;
}

}  // namespace

int main() {
  llm::DecodeConfig decode;
  decode.hidden = 256;
  decode.heads = 4;
  decode.layers = 2;
  decode.prompt_tokens = 64;
  decode.decode_steps = 16;

  metrics::MetricsConfig mcfg = metrics::MetricsConfig::enabled_default();
  mcfg.sample_interval_cycles = 20000;

  sim::Session session = sim::Session::builder().metrics(mcfg).build();
  const sim::Report rep = llm::run_decode(session, decode);

  const auto& tl = rep.metrics.counter_timelines;
  const auto& hits = tl.at("dram.ch0.row_hits");
  const auto& misses = tl.at("dram.ch0.row_misses");
  const auto& dram_bytes = tl.at("dram.ch0.bytes");
  const auto& macs = tl.at("core0.exec.macs");

  std::printf("%s: %llu cycles, %llu windows x %llu-cycle sampling\n\n",
              rep.model.c_str(),
              static_cast<unsigned long long>(rep.cycles),
              static_cast<unsigned long long>(rep.metrics.windows),
              static_cast<unsigned long long>(rep.metrics.sample_interval));

  std::printf("dram ch0 row-hit rate   %s\n",
              sparkline(rate_of(hits, misses)).c_str());
  std::printf("dram ch0 bytes (peak-%%) %s\n",
              sparkline(normalized(dram_bytes)).c_str());
  std::printf("exec MACs (peak-%%)      %s\n\n",
              sparkline(normalized(macs)).c_str());

  double hit_rate_total = 0.0;
  std::uint64_t h = 0, m = 0;
  for (const std::uint64_t v : hits) h += v;
  for (const std::uint64_t v : misses) m += v;
  if (h + m != 0) {
    hit_rate_total = static_cast<double>(h) / static_cast<double>(h + m);
  }
  std::printf("row-hit rate %.1f%% overall; KV cache %.1f KiB at the final "
              "token; %.0f cycles/token\n",
              100.0 * hit_rate_total,
              rep.metrics.gauges.at("llm.kv_bytes") / 1024.0,
              rep.llm.cycles_per_token);
  return 0;
}
