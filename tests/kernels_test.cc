// Golden-reference kernel tests: hand-computed cases plus structural
// properties (im2col-then-gemm == direct conv, pooling bounds, softmax
// normalization, ...). These kernels are the oracle for everything else,
// so they get their own scrutiny.

#include <gtest/gtest.h>

#include <cmath>

#include "src/base/fixed.h"
#include "src/base/rng.h"
#include "src/cpu/kernels.h"

namespace gemmini {
namespace {

TEST(RefGemm, HandComputed2x2) {
  TensorI8 a({2, 2}), b({2, 2}), c({2, 2});
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(1, 0) = 3; a.at(1, 1) = 4;
  b.at(0, 0) = 5; b.at(0, 1) = 6; b.at(1, 0) = 7; b.at(1, 1) = 8;
  ref::gemm_i8(a, b, nullptr, c, 0, Activation::kNone);
  EXPECT_EQ(c.at(0, 0), 19);
  EXPECT_EQ(c.at(0, 1), 22);
  EXPECT_EQ(c.at(1, 0), 43);
  EXPECT_EQ(c.at(1, 1), 50);
}

TEST(RefGemm, SaturatesInsteadOfWrapping) {
  TensorI8 a({1, 4}), b({4, 1}), c({1, 1});
  for (int i = 0; i < 4; ++i) {
    a[i] = 127;
    b[i] = 127;
  }
  ref::gemm_i8(a, b, nullptr, c, 0, Activation::kNone);
  EXPECT_EQ(c.at(0, 0), 127);  // 4*127*127 saturates to int8 max
}

TEST(RefGemm, BiasAddsPerColumn) {
  TensorI8 a({1, 1}), b({1, 2}), c({1, 2});
  a[0] = 1;
  b.at(0, 0) = 10;
  b.at(0, 1) = 20;
  const std::int32_t bias[2] = {5, -30};
  ref::gemm_i8(a, b, bias, c, 0, Activation::kNone);
  EXPECT_EQ(c.at(0, 0), 15);
  EXPECT_EQ(c.at(0, 1), -10);
}

TEST(RefGemm, AccI32MatchesQuantizedPipeline) {
  Rng rng(1);
  TensorI8 a({8, 8}), b({8, 8}), c8({8, 8});
  TensorI32 c32({8, 8});
  a.randomize(rng);
  b.randomize(rng);
  ref::gemm_i8_acc_i32(a, b, c32);
  ref::gemm_i8(a, b, nullptr, c8, 4, Activation::kNone);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(c8[i], quantize_i32_to_i8(c32[i], 4, Activation::kNone));
  }
}

TEST(RefConv, Im2colGemmEquivalence) {
  // conv(in, w) == im2col(in) x flatten(w) — the identity the whole
  // accelerator mapping rests on.
  Rng rng(2);
  const unsigned ih = 9, iw = 9, ic = 5, k = 3, oc = 7, stride = 2, pad = 1;
  TensorI8 in({1, ih, iw, ic}), w({k, k, ic, oc});
  in.randomize(rng);
  w.randomize(rng);

  TensorI8 direct({1, ref::conv_out_dim(ih, k, stride, pad),
                   ref::conv_out_dim(iw, k, stride, pad), oc});
  ref::conv2d_i8(in, w, nullptr, direct, {stride, pad, 6, Activation::kNone});

  const std::size_t m = direct.dim(1) * direct.dim(2);
  TensorI8 col({m, static_cast<std::size_t>(k) * k * ic});
  ref::im2col_i8(in, k, k, stride, pad, col);
  TensorI8 wmat({static_cast<std::size_t>(k) * k * ic, oc});
  std::copy(w.data(), w.data() + w.size(), wmat.data());
  TensorI8 viagemm({m, oc});
  ref::gemm_i8(col, wmat, nullptr, viagemm, 6, Activation::kNone);

  for (std::size_t i = 0; i < m * oc; ++i) {
    ASSERT_EQ(direct[i], viagemm[i]) << "flat index " << i;
  }
}

TEST(RefConv, PaddingContributesZeros) {
  TensorI8 in({1, 1, 1, 1}), w({3, 3, 1, 1}), out({1, 1, 1, 1});
  in.at(0, 0, 0, 0) = 3;
  w.fill(1);
  ref::conv2d_i8(in, w, nullptr, out, {1, 1, 0, Activation::kNone});
  EXPECT_EQ(out.at(0, 0, 0, 0), 3);  // only the center tap sees data
}

TEST(RefDepthwise, ChannelsIndependent) {
  Rng rng(3);
  TensorI8 in({1, 6, 6, 3}), w({3, 3, 3});
  in.randomize(rng);
  w.randomize(rng);
  TensorI8 out({1, 6, 6, 3});
  ref::depthwise_conv2d_i8(in, w, nullptr, out, {1, 1, 4, Activation::kNone});

  // Zeroing channel 2's input must not change channels 0/1 outputs.
  TensorI8 in2 = in;
  for (unsigned y = 0; y < 6; ++y) {
    for (unsigned x = 0; x < 6; ++x) in2.at(0, y, x, 2) = 0;
  }
  TensorI8 out2({1, 6, 6, 3});
  ref::depthwise_conv2d_i8(in2, w, nullptr, out2,
                           {1, 1, 4, Activation::kNone});
  for (unsigned y = 0; y < 6; ++y) {
    for (unsigned x = 0; x < 6; ++x) {
      EXPECT_EQ(out.at(0, y, x, 0), out2.at(0, y, x, 0));
      EXPECT_EQ(out.at(0, y, x, 1), out2.at(0, y, x, 1));
    }
  }
}

TEST(RefPool, MaxPoolPicksMaximum) {
  TensorI8 in({1, 4, 4, 1});
  for (std::size_t i = 0; i < 16; ++i) in[i] = static_cast<std::int8_t>(i);
  TensorI8 out({1, 2, 2, 1});
  ref::maxpool_i8(in, 2, 2, 0, out);
  EXPECT_EQ(out.at(0, 0, 0, 0), 5);
  EXPECT_EQ(out.at(0, 0, 1, 0), 7);
  EXPECT_EQ(out.at(0, 1, 0, 0), 13);
  EXPECT_EQ(out.at(0, 1, 1, 0), 15);
}

TEST(RefPool, OutputNeverExceedsInputMax) {
  Rng rng(4);
  TensorI8 in({1, 11, 11, 4});
  in.randomize(rng);
  std::int8_t max_in = -128;
  for (std::size_t i = 0; i < in.size(); ++i) max_in = std::max(max_in, in[i]);
  TensorI8 out({1, 5, 5, 4});
  ref::maxpool_i8(in, 3, 2, 0, out);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_LE(out[i], max_in);
}

TEST(RefPool, GlobalAvgPoolOfConstantIsConstant) {
  TensorI8 in({1, 7, 7, 3});
  in.fill(42);
  TensorI8 out({1, 3});
  ref::global_avgpool_i8(in, out);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(out[i], 42);
}

TEST(RefResadd, SaturatesAndActivates) {
  TensorI8 a({3}), b({3}), out({3});
  a[0] = 100; b[0] = 100;   // saturate
  a[1] = -50; b[1] = 20;    // negative, relu clips
  a[2] = 5; b[2] = 6;
  ref::resadd_i8(a, b, out, Activation::kRelu);
  EXPECT_EQ(out[0], 127);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[2], 11);
}

TEST(RefSoftmax, RowsSumToOne) {
  Rng rng(5);
  TensorF32 in({4, 16}), out({4, 16});
  in.randomize(rng);
  ref::softmax_f32(in, out);
  for (std::size_t r = 0; r < 4; ++r) {
    float sum = 0;
    for (std::size_t c = 0; c < 16; ++c) {
      EXPECT_GT(out.at(r, c), 0.0f);
      sum += out.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(RefSoftmax, InvariantToRowShift) {
  TensorF32 a({1, 4}), b({1, 4}), oa({1, 4}), ob({1, 4});
  for (int i = 0; i < 4; ++i) {
    a[i] = static_cast<float>(i);
    b[i] = static_cast<float>(i) + 100.0f;
  }
  ref::softmax_f32(a, oa);
  ref::softmax_f32(b, ob);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(oa[i], ob[i], 1e-6f);
}

TEST(RefLayerNorm, ZeroMeanUnitVariance) {
  Rng rng(6);
  TensorF32 in({3, 64}), out({3, 64});
  in.randomize(rng);
  ref::layernorm_f32(in, out);
  for (std::size_t r = 0; r < 3; ++r) {
    float mean = 0, var = 0;
    for (std::size_t c = 0; c < 64; ++c) mean += out.at(r, c);
    mean /= 64;
    for (std::size_t c = 0; c < 64; ++c) {
      var += (out.at(r, c) - mean) * (out.at(r, c) - mean);
    }
    var /= 64;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(RefGelu, KnownValues) {
  TensorF32 in({3}), out({3});
  in[0] = 0.0f; in[1] = 100.0f; in[2] = -100.0f;
  ref::gelu_f32(in, out);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_NEAR(out[1], 100.0f, 1e-3f);
  EXPECT_NEAR(out[2], 0.0f, 1e-3f);
}

// ---- Blocked-vs-naive GEMM equivalence -------------------------------------
// The blocked, B-packed kernels must match the retained naive loops
// bit-for-bit across shapes (including non-multiples of the 16-wide array dim
// and of the kernels' internal 64-column panel), bias on/off, every
// activation, and assorted shifts. These are the guards that let the rest of
// the stack trust the fast kernels as the functional oracle.

struct GemmShape {
  std::size_t m, k, n;
};

const GemmShape kEquivalenceShapes[] = {
    {1, 1, 1},    {1, 7, 1},    {3, 5, 7},     {16, 16, 16},
    {17, 33, 65}, {64, 64, 64}, {65, 128, 63}, {128, 70, 200},
    {5, 300, 96},
};

TEST(GemmEquivalence, BlockedI8MatchesNaive) {
  const Activation acts[] = {Activation::kNone, Activation::kRelu,
                             Activation::kRelu6};
  std::uint64_t seed = 100;
  for (const auto& s : kEquivalenceShapes) {
    for (bool bias : {false, true}) {
      for (Activation act : acts) {
        for (unsigned shift : {0u, 6u}) {
          Rng rng(++seed);
          TensorI8 a({s.m, s.k}), b({s.k, s.n});
          TensorI8 c_fast({s.m, s.n}), c_naive({s.m, s.n});
          a.randomize(rng);
          b.randomize(rng);
          std::vector<std::int32_t> bias_v(s.n);
          for (auto& v : bias_v) v = rng.next_range(-5000, 5000);
          ref::gemm_i8(a, b, bias ? bias_v.data() : nullptr, c_fast, shift,
                       act);
          ref::gemm_i8_naive(a, b, bias ? bias_v.data() : nullptr, c_naive,
                             shift, act);
          ASSERT_EQ(c_fast, c_naive)
              << "i8 mismatch m=" << s.m << " k=" << s.k << " n=" << s.n
              << " bias=" << bias << " act=" << static_cast<int>(act)
              << " shift=" << shift;
        }
      }
    }
  }
}

TEST(GemmEquivalence, BlockedF32MatchesNaiveBitForBit) {
  const Activation acts[] = {Activation::kNone, Activation::kRelu,
                             Activation::kRelu6};
  std::uint64_t seed = 500;
  for (const auto& s : kEquivalenceShapes) {
    for (bool bias : {false, true}) {
      for (Activation act : acts) {
        Rng rng(++seed);
        TensorF32 a({s.m, s.k}), b({s.k, s.n});
        TensorF32 c_fast({s.m, s.n}), c_naive({s.m, s.n});
        a.randomize(rng);
        b.randomize(rng);
        std::vector<float> bias_v(s.n);
        for (auto& v : bias_v) v = rng.next_float_pm1();
        ref::gemm_f32(a, b, bias ? bias_v.data() : nullptr, c_fast, act);
        ref::gemm_f32_naive(a, b, bias ? bias_v.data() : nullptr, c_naive,
                            act);
        // operator== compares the float payloads exactly: the blocked kernel
        // must reproduce the naive accumulation order, not just be "close".
        ASSERT_EQ(c_fast, c_naive)
            << "f32 mismatch m=" << s.m << " k=" << s.k << " n=" << s.n
            << " bias=" << bias << " act=" << static_cast<int>(act);
      }
    }
  }
}

TEST(GemmEquivalence, BlockedAccI32MatchesNaive) {
  std::uint64_t seed = 900;
  for (const auto& s : kEquivalenceShapes) {
    Rng rng(++seed);
    TensorI8 a({s.m, s.k}), b({s.k, s.n});
    TensorI32 c_fast({s.m, s.n}), c_naive({s.m, s.n});
    a.randomize(rng);
    b.randomize(rng);
    ref::gemm_i8_acc_i32(a, b, c_fast);
    ref::gemm_i8_acc_i32_naive(a, b, c_naive);
    ASSERT_EQ(c_fast, c_naive)
        << "acc_i32 mismatch m=" << s.m << " k=" << s.k << " n=" << s.n;
  }
}

TEST(GemmEquivalence, SaturationExtremesMatch) {
  // All-max inputs drive the int64 accumulator towards the INT32 clamp;
  // blocked and naive must clamp identically.
  TensorI8 a({4, 300}), b({300, 4});
  TensorI32 c_fast({4, 4}), c_naive({4, 4});
  a.fill(127);
  b.fill(127);
  ref::gemm_i8_acc_i32(a, b, c_fast);
  ref::gemm_i8_acc_i32_naive(a, b, c_naive);
  EXPECT_EQ(c_fast, c_naive);
  a.fill(-128);
  ref::gemm_i8_acc_i32(a, b, c_fast);
  ref::gemm_i8_acc_i32_naive(a, b, c_naive);
  EXPECT_EQ(c_fast, c_naive);
}

}  // namespace
}  // namespace gemmini
