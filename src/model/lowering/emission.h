#pragma once
// Lowering phase 4: emission. Consumes a finished sim::Plan and produces
// the runnable WorkStream (plus the LoweredModel layout view): RoCC
// programs for accelerator-placed layers (staged with the plan's tiles),
// CPU cost-model steps for CPU-placed layers, and — in functional mode —
// the pre/post fixup hooks that materialize data the modeled hardware
// produces outside the ISA-level simulation.
//
// Emission is a pure function of the plan: it does not allocate or touch
// simulated memory (fixups run later, when the SoC executes the stream),
// so one plan can be emitted — and re-emitted after mutation — any number
// of times. Tile overrides are validated here against the scratchpad/
// accumulator budget (RuntimeError via validate_tiles).

#include "src/arch/config.h"
#include "src/cpu/cost_model.h"
#include "src/model/runner.h"
#include "src/sim/plan.h"

namespace gemmini::lowering {

LoweredModel emit_stream(const sim::Plan& plan, const GemminiConfig& cfg,
                         const CpuCostModel& cpu);

}  // namespace gemmini::lowering
