// ISA tests: local-address encoding, RoCC round-trips, disassembly.

#include <gtest/gtest.h>

#include "src/isa/isa.h"

namespace gemmini {
namespace {

TEST(LocalAddr, SpRow) {
  const LocalAddr a = LocalAddr::sp_row(1234);
  EXPECT_FALSE(a.is_garbage());
  EXPECT_FALSE(a.is_acc());
  EXPECT_EQ(a.row(), 1234u);
}

TEST(LocalAddr, AccRowWithAccumulate) {
  const LocalAddr a = LocalAddr::acc_row(77, true);
  EXPECT_TRUE(a.is_acc());
  EXPECT_TRUE(a.accumulate());
  EXPECT_EQ(a.row(), 77u);
  const LocalAddr b = LocalAddr::acc_row(77, false);
  EXPECT_FALSE(b.accumulate());
}

TEST(LocalAddr, GarbageIsNeitherSpNorAcc) {
  const LocalAddr g = LocalAddr::garbage();
  EXPECT_TRUE(g.is_garbage());
  EXPECT_FALSE(g.is_acc());
  EXPECT_FALSE(g.accumulate());
}

Instruction roundtrip(const Instruction& i) { return decode(encode(i)); }

TEST(RoccEncoding, MvinRoundTrip) {
  for (unsigned ch = 0; ch < 3; ++ch) {
    const Instruction i =
        make_mvin(0x1234'5678'9abcull, LocalAddr::sp_row(4095), 16, 13, ch);
    const Instruction r = roundtrip(i);
    EXPECT_EQ(r.op, Opcode::kMvin);
    EXPECT_EQ(r.dram_addr, i.dram_addr);
    EXPECT_EQ(r.local, i.local);
    EXPECT_EQ(r.rows, 16);
    EXPECT_EQ(r.cols, 13);
    EXPECT_EQ(r.ld_channel, ch);
  }
}

TEST(RoccEncoding, MvoutAccumulatorRoundTrip) {
  const Instruction i =
      make_mvout(0xdead'b000ull, LocalAddr::acc_row(99, false), 7, 16);
  const Instruction r = roundtrip(i);
  EXPECT_EQ(r.op, Opcode::kMvout);
  EXPECT_TRUE(r.local.is_acc());
  EXPECT_EQ(r.local.row(), 99u);
  EXPECT_EQ(r.rows, 7);
}

TEST(RoccEncoding, PreloadRoundTrip) {
  const Instruction i = make_preload(LocalAddr::sp_row(100),
                                     LocalAddr::acc_row(3, true), 16, 12, 9,
                                     12);
  const Instruction r = roundtrip(i);
  EXPECT_EQ(r.op, Opcode::kPreload);
  EXPECT_EQ(r.local, i.local);
  EXPECT_EQ(r.local2, i.local2);
  EXPECT_TRUE(r.local2.accumulate());
  EXPECT_EQ(r.rows, 16);
  EXPECT_EQ(r.cols, 12);
  EXPECT_EQ(r.rows2, 9);
  EXPECT_EQ(r.cols2, 12);
}

TEST(RoccEncoding, ComputeBothFlavors) {
  const Instruction p = roundtrip(make_compute(
      LocalAddr::sp_row(1), LocalAddr::garbage(), 16, 16, 0, 0, true));
  EXPECT_EQ(p.op, Opcode::kComputePreloaded);
  const Instruction a = roundtrip(make_compute(
      LocalAddr::sp_row(1), LocalAddr::sp_row(2), 4, 5, 4, 5, false));
  EXPECT_EQ(a.op, Opcode::kComputeAccumulated);
  EXPECT_EQ(a.rows2, 4);
}

TEST(RoccEncoding, ConfigExRoundTrip) {
  const Instruction i = make_config_ex(Dataflow::kOutputStationary,
                                       Activation::kRelu6, 13, true);
  const Instruction r = roundtrip(i);
  EXPECT_EQ(r.op, Opcode::kConfigEx);
  EXPECT_EQ(r.dataflow, Dataflow::kOutputStationary);
  EXPECT_EQ(r.activation, Activation::kRelu6);
  EXPECT_EQ(r.out_shift, 13);
  EXPECT_TRUE(r.a_transpose);
}

TEST(RoccEncoding, ConfigLdPreservesScale) {
  const Instruction i = make_config_ld(12345, 0.625f, 2);
  const Instruction r = roundtrip(i);
  EXPECT_EQ(r.op, Opcode::kConfigLd);
  EXPECT_EQ(r.stride_bytes, 12345u);
  EXPECT_FLOAT_EQ(r.ld_scale, 0.625f);
  EXPECT_EQ(r.ld_channel, 2);
}

TEST(RoccEncoding, ConfigLdInt4RoundTrip) {
  // The packed-int4 flag must survive encode/decode alongside the other
  // CONFIG_LD fields, and default to off when not requested.
  const Instruction i = make_config_ld(512, 1.0f, 1, /*int4=*/true);
  const Instruction r = roundtrip(i);
  EXPECT_EQ(r.op, Opcode::kConfigLd);
  EXPECT_EQ(r.stride_bytes, 512u);
  EXPECT_EQ(r.ld_channel, 1);
  EXPECT_TRUE(r.ld_int4);
  EXPECT_FALSE(roundtrip(make_config_ld(512, 1.0f, 1)).ld_int4);
}

TEST(RoccEncoding, ConfigStPooling) {
  const Instruction i = make_config_st(2048, 3, 2);
  const Instruction r = roundtrip(i);
  EXPECT_EQ(r.op, Opcode::kConfigSt);
  EXPECT_EQ(r.stride_bytes, 2048u);
  EXPECT_EQ(r.pool_window, 3);
  EXPECT_EQ(r.pool_stride, 2);
}

TEST(RoccEncoding, FenceAndFlush) {
  EXPECT_EQ(roundtrip(make_fence()).op, Opcode::kFence);
  EXPECT_EQ(roundtrip(make_flush()).op, Opcode::kFlush);
}

TEST(Disassembly, ReadableOutput) {
  Program prog{make_config_ex(Dataflow::kWeightStationary, Activation::kRelu,
                              8),
               make_mvin(0x1000, LocalAddr::sp_row(0), 16, 16),
               make_preload(LocalAddr::sp_row(0), LocalAddr::acc_row(0, false),
                            16, 16, 16, 16),
               make_compute(LocalAddr::sp_row(16), LocalAddr::garbage(), 16,
                            16, 0, 0, true),
               make_mvout(0x2000, LocalAddr::acc_row(0, false), 16, 16),
               make_fence()};
  const std::string d = disassemble(prog);
  EXPECT_NE(d.find("config_ex"), std::string::npos);
  EXPECT_NE(d.find("mvin"), std::string::npos);
  EXPECT_NE(d.find("preload"), std::string::npos);
  EXPECT_NE(d.find("compute.preloaded"), std::string::npos);
  EXPECT_NE(d.find("acc[0]"), std::string::npos);
  EXPECT_NE(d.find("fence"), std::string::npos);
}

TEST(Builders, RejectInvalidArguments) {
  EXPECT_DEATH(make_config_ex(Dataflow::kBoth, Activation::kNone, 0), "");
}

}  // namespace
}  // namespace gemmini
