#include "src/trace/trace.h"

namespace gemmini::trace {

const char* unit_name(Unit u) {
  switch (u) {
    case Unit::kSoc: return "soc";
    case Unit::kCpu: return "cpu";
    case Unit::kDmaLoad: return "dma.load";
    case Unit::kDmaStore: return "dma.store";
    case Unit::kExec: return "exec";
    case Unit::kSystemBus: return "bus.system";
    case Unit::kMemoryBus: return "bus.memory";
    case Unit::kDram: return "dram";
    case Unit::kL2: return "l2";
    case Unit::kTranslation: return "translation";
  }
  return "?";
}

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kLayerSpan: return "layer";
    case EventKind::kCpuStep: return "cpu_step";
    case EventKind::kOsSwitch: return "os_switch";
    case EventKind::kMvin: return "mvin";
    case EventKind::kMvout: return "mvout";
    case EventKind::kDmaBurstRead: return "dma_read";
    case EventKind::kDmaBurstWrite: return "dma_write";
    case EventKind::kPreload: return "preload";
    case EventKind::kTile: return "tile";
    case EventKind::kBusGrant: return "bus_grant";
    case EventKind::kBusWait: return "bus_wait";
    case EventKind::kDramRowHit: return "row_hit";
    case EventKind::kDramRowMiss: return "row_miss";
    case EventKind::kL2Hit: return "l2_hit";
    case EventKind::kL2Miss: return "l2_miss";
    case EventKind::kTlbMiss: return "tlb_miss";
    case EventKind::kPtwWalk: return "ptw_walk";
    case EventKind::kDramRefresh: return "refresh";
    case EventKind::kDramQueueWait: return "queue_wait";
    case EventKind::kDramWriteDrain: return "write_drain";
    case EventKind::kFaultInject: return "fault";
    case EventKind::kFaultEccCorrect: return "ecc_correct";
    case EventKind::kFaultDmaRetry: return "dma_retry";
    case EventKind::kFaultTransRetry: return "trans_retry";
  }
  return "?";
}

Unit event_kind_unit(EventKind k) {
  switch (k) {
    case EventKind::kLayerSpan:
    case EventKind::kOsSwitch: return Unit::kSoc;
    case EventKind::kCpuStep: return Unit::kCpu;
    case EventKind::kMvin:
    case EventKind::kDmaBurstRead: return Unit::kDmaLoad;
    case EventKind::kMvout:
    case EventKind::kDmaBurstWrite: return Unit::kDmaStore;
    case EventKind::kPreload:
    case EventKind::kTile: return Unit::kExec;
    case EventKind::kBusGrant:
    case EventKind::kBusWait: return Unit::kSystemBus;  // overridden by site
    case EventKind::kDramRowHit:
    case EventKind::kDramRowMiss:
    case EventKind::kDramRefresh:
    case EventKind::kDramQueueWait:
    case EventKind::kDramWriteDrain: return Unit::kDram;
    case EventKind::kL2Hit:
    case EventKind::kL2Miss: return Unit::kL2;
    case EventKind::kTlbMiss:
    case EventKind::kPtwWalk: return Unit::kTranslation;
    case EventKind::kFaultInject: return Unit::kSoc;  // overridden by site
    case EventKind::kFaultEccCorrect: return Unit::kDram;
    case EventKind::kFaultDmaRetry: return Unit::kDmaLoad;  // overridden by site
    case EventKind::kFaultTransRetry: return Unit::kTranslation;
  }
  return Unit::kSoc;
}

RingBufferSink::RingBufferSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  events_.reserve(capacity_);
}

void RingBufferSink::record(const TraceEvent& e) {
  if (events_.size() < capacity_) {
    events_.push_back(e);
    return;
  }
  // Full: overwrite the oldest event, keep the most recent window.
  events_[head_] = e;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> RingBufferSink::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(head_ + i) % events_.size()]);
  }
  return out;
}

void RingBufferSink::clear() {
  events_.clear();
  head_ = 0;
  dropped_ = 0;
}

}  // namespace gemmini::trace
